package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
	"mrclone/internal/rng"
)

func TestChebyshevTailBound(t *testing.T) {
	cases := []struct{ k, want float64 }{
		{0, 1},
		{-1, 1},
		{0.5, 1}, // clipped
		{2, 0.25},
		{3, 1.0 / 9},
	}
	for _, tc := range cases {
		if got := ChebyshevTailBound(tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("k=%v: %v, want %v", tc.k, got, tc.want)
		}
	}
}

// The Chebyshev bound must hold empirically for an arbitrary finite-variance
// distribution.
func TestChebyshevEmpirically(t *testing.T) {
	d := dist.Lognormal{MuLog: 2, SigmaLog: 0.5}
	mean, sd := d.Mean(), d.StdDev()
	src := rng.New(4)
	const n = 200000
	for _, k := range []float64{1.5, 2, 3} {
		exceed := 0
		src2 := src.SplitN("cheb", int(k*10))
		for i := 0; i < n; i++ {
			if math.Abs(d.Sample(src2)-mean) >= k*sd {
				exceed++
			}
		}
		rate := float64(exceed) / n
		if rate > ChebyshevTailBound(k) {
			t.Errorf("k=%v: empirical tail %v exceeds Chebyshev %v", k, rate, ChebyshevTailBound(k))
		}
	}
}

func TestCantelliUpperBound(t *testing.T) {
	if got := CantelliUpperBound(2, 0); got != 1 {
		t.Errorf("d=0: %v", got)
	}
	if got := CantelliUpperBound(0, 5); got != 0 {
		t.Errorf("sigma=0: %v", got)
	}
	if got := CantelliUpperBound(math.Inf(1), 5); got != 1 {
		t.Errorf("sigma=inf: %v", got)
	}
	if got := CantelliUpperBound(2, 2); got != 0.5 {
		t.Errorf("sigma=d=2: %v, want 0.5", got)
	}
}

func TestTheorem1SuccessProbability(t *testing.T) {
	if got := Theorem1SuccessProbability(1); got != 0 {
		t.Errorf("r=1: %v", got)
	}
	// r=3: ((9-1)/9)^2 = 64/81.
	if got, want := Theorem1SuccessProbability(3), 64.0/81; math.Abs(got-want) > 1e-12 {
		t.Errorf("r=3: %v, want %v", got, want)
	}
	// Monotone increasing toward 1.
	prev := 0.0
	for r := 1.1; r < 20; r += 0.7 {
		p := Theorem1SuccessProbability(r)
		if p <= prev || p >= 1 {
			t.Fatalf("success probability not in (prev, 1) at r=%v: %v", r, p)
		}
		prev = p
	}
}

func specsForBound(t *testing.T) []job.Spec {
	t.Helper()
	u, err := dist.NewUniform(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	return []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 2, MapDist: u, ReduceTask: 1, ReduceDist: u},
		{ID: 1, Weight: 2, MapTasks: 4, MapDist: u},
	}
}

func TestTheorem1Bound(t *testing.T) {
	specs := specsForBound(t)
	b, err := Theorem1Bound(specs, 0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reduce stats: mean 10, sd 10/sqrt(12).
	sd := 10 / math.Sqrt(12)
	fs := job.AccumulatedHigherPriorityWorkload(specs, 0, 2)
	want := 10 + 2*sd + fs/4
	if math.Abs(b-want) > 1e-9 {
		t.Errorf("bound = %v, want %v", b, want)
	}
	// Map-only job falls back to map stats.
	b1, err := Theorem1Bound(specs, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b1 <= 0 {
		t.Error("map-only bound should be positive")
	}
	// Errors.
	if _, err := Theorem1Bound(specs, -1, 4, 2); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := Theorem1Bound(specs, 0, 0, 2); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := Theorem1Bound(specs, 0, 4, -1); err == nil {
		t.Error("negative r accepted")
	}
}

func TestSRPTLowerBound(t *testing.T) {
	specs := specsForBound(t)
	lb, err := SRPTLowerBound(specs, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatal("lower bound must be positive")
	}
	// Doubling machines halves the bound.
	lb8, _ := SRPTLowerBound(specs, 8, 0)
	if math.Abs(lb8*2-lb) > 1e-9 {
		t.Errorf("bound should scale 1/M: %v vs %v", lb8, lb)
	}
	if _, err := SRPTLowerBound(specs, 0, 0); err == nil {
		t.Error("zero machines accepted")
	}
}

func TestWeightedFlowtimeAndRatio(t *testing.T) {
	res := &cluster.Result{Jobs: []cluster.JobRecord{
		{ID: 0, Weight: 2, Flowtime: 10},
		{ID: 1, Weight: 1, Flowtime: 30},
	}}
	wf, err := WeightedFlowtime(res)
	if err != nil {
		t.Fatal(err)
	}
	if wf != 50 {
		t.Errorf("weighted flowtime = %v, want 50", wf)
	}
	ratio, err := CompetitiveRatio(wf, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 2 {
		t.Errorf("ratio = %v, want 2", ratio)
	}
	if _, err := WeightedFlowtime(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := WeightedFlowtime(&cluster.Result{Jobs: []cluster.JobRecord{{Flowtime: -1}}}); err == nil {
		t.Error("unfinished job accepted")
	}
	if _, err := CompetitiveRatio(1, 0); err == nil {
		t.Error("zero lower bound accepted")
	}
	if _, err := CompetitiveRatio(-1, 5); err == nil {
		t.Error("negative measured accepted")
	}
}

func TestTheorem2CompetitiveCeiling(t *testing.T) {
	// (C + 1 + eps)/eps^2 with C=2, eps=0.5: 3.5/0.25 = 14.
	got, err := Theorem2CompetitiveCeiling(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Errorf("ceiling = %v, want 14", got)
	}
	if _, err := Theorem2CompetitiveCeiling(0, 2); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Theorem2CompetitiveCeiling(1, 2); err == nil {
		t.Error("eps=1 accepted")
	}
	if _, err := Theorem2CompetitiveCeiling(0.5, 0); err == nil {
		t.Error("maxCopies=0 accepted")
	}
	// Smaller eps => larger ceiling (the o(1/eps^2) blow-up).
	c1, _ := Theorem2CompetitiveCeiling(0.2, 2)
	c2, _ := Theorem2CompetitiveCeiling(0.4, 2)
	if c1 <= c2 {
		t.Error("ceiling must grow as eps shrinks")
	}
}

func TestProposition1Holds(t *testing.T) {
	sqrtF := func(x float64) float64 { return math.Sqrt(x) }
	if !Proposition1Holds(sqrtF, 100, 200) {
		t.Error("sqrt rejected")
	}
	convex := func(x float64) float64 { return x * x }
	if Proposition1Holds(convex, 100, 200) {
		t.Error("x^2 accepted")
	}
	if Proposition1Holds(sqrtF, 0, 10) || Proposition1Holds(sqrtF, 10, 1) {
		t.Error("bad grid accepted")
	}
	// Property: any function a*x^b with 0<b<=1, a>0 passes.
	f := func(rawA, rawB float64) bool {
		a := math.Mod(math.Abs(rawA), 10) + 0.1
		b := math.Mod(math.Abs(rawB), 1)
		if b == 0 {
			b = 1
		}
		return Proposition1Holds(func(x float64) float64 { return a * math.Pow(x, b) }, 50, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
