// Package analysis provides numerical verification of the paper's theory:
// the Chebyshev machinery behind Lemma 1 and Theorem 1, Proposition 1's
// concavity ratio property, and the competitive-ratio accounting used in the
// offline (Remark 2) and online (Theorem 2) guarantees. The experiments and
// tests use it to check that measured behaviour stays inside the proven
// envelopes.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
)

// ErrBadArgument flags invalid analysis inputs.
var ErrBadArgument = errors.New("analysis: bad argument")

// ChebyshevTailBound returns the two-sided Chebyshev bound
// P(|X - mean| >= k*sigma) <= 1/k^2, clipped to [0, 1]. It is the inequality
// behind Lemma 1's r^2-1 / r^2 success probability.
func ChebyshevTailBound(k float64) float64 {
	if k <= 0 {
		return 1
	}
	b := 1 / (k * k)
	if b > 1 {
		return 1
	}
	return b
}

// CantelliUpperBound returns the one-sided (Cantelli) bound
// P(X - mean >= d) <= sigma^2 / (sigma^2 + d^2) for d > 0.
func CantelliUpperBound(sigma, d float64) float64 {
	if d <= 0 {
		return 1
	}
	if sigma == 0 {
		return 0
	}
	if math.IsInf(sigma, 1) {
		return 1
	}
	return sigma * sigma / (sigma*sigma + d*d)
}

// Theorem1SuccessProbability returns the probability floor of Theorem 1:
// the flowtime bound holds with probability at least 1 + 1/r^4 - 2/r^2
// (equivalently ((r^2-1)/r^2)^2).
func Theorem1SuccessProbability(r float64) float64 {
	if r <= 1 {
		return 0
	}
	q := (r*r - 1) / (r * r)
	return q * q
}

// Theorem1Bound returns the offline flowtime bound for spec i among specs:
// E^r_i + r*sigma^r_i + f^s_i / M, where the first two terms use the reduce
// phase when present and the map phase otherwise (a map-only job's last task
// is a map task).
func Theorem1Bound(specs []job.Spec, i, machines int, r float64) (float64, error) {
	if i < 0 || i >= len(specs) {
		return 0, fmt.Errorf("%w: index %d of %d specs", ErrBadArgument, i, len(specs))
	}
	if machines <= 0 {
		return 0, fmt.Errorf("%w: machines %d", ErrBadArgument, machines)
	}
	if r < 0 {
		return 0, fmt.Errorf("%w: deviation factor %v", ErrBadArgument, r)
	}
	stats := specs[i].PhaseStats(job.PhaseReduce)
	if specs[i].ReduceTask == 0 {
		stats = specs[i].PhaseStats(job.PhaseMap)
	}
	fs := job.AccumulatedHigherPriorityWorkload(specs, i, r)
	return stats.Mean + r*stats.StdDev + fs/float64(machines), nil
}

// SRPTLowerBound returns the single-machine SRPT lower bound on the weighted
// sum of flowtimes: sum_i w_i * f^s_i / M (Remark 2: "the performance of the
// optimal scheduler is no better than the SRPT scheduler with one machine...
// the flowtime of each job is just f^s_i / M").
func SRPTLowerBound(specs []job.Spec, machines int, r float64) (float64, error) {
	if machines <= 0 {
		return 0, fmt.Errorf("%w: machines %d", ErrBadArgument, machines)
	}
	var sum float64
	for i := range specs {
		fs := job.AccumulatedHigherPriorityWorkload(specs, i, r)
		sum += specs[i].Weight * fs / float64(machines)
	}
	return sum, nil
}

// WeightedFlowtime returns sum_i w_i * flowtime_i of a result.
func WeightedFlowtime(res *cluster.Result) (float64, error) {
	if res == nil || len(res.Jobs) == 0 {
		return 0, fmt.Errorf("%w: empty result", ErrBadArgument)
	}
	var sum float64
	for _, j := range res.Jobs {
		if j.Flowtime < 0 {
			return 0, fmt.Errorf("%w: job %d unfinished", ErrBadArgument, j.ID)
		}
		sum += j.Weight * float64(j.Flowtime)
	}
	return sum, nil
}

// CompetitiveRatio returns the ratio of a measured weighted flowtime to a
// lower bound on the optimum. Values <= c certify c-competitiveness on this
// instance (the converse does not hold: the bound may be loose).
func CompetitiveRatio(measured, lowerBound float64) (float64, error) {
	if lowerBound <= 0 {
		return 0, fmt.Errorf("%w: lower bound %v", ErrBadArgument, lowerBound)
	}
	if measured < 0 {
		return 0, fmt.Errorf("%w: measured %v", ErrBadArgument, measured)
	}
	return measured / lowerBound, nil
}

// Theorem2CompetitiveCeiling returns the o(1/eps^2)-style ceiling used in
// Theorem 2's statement, instantiated as (C + 1 + eps)/eps^2 with C the
// maximum copies per task (Equation 33 of the appendix).
func Theorem2CompetitiveCeiling(eps float64, maxCopies int) (float64, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("%w: eps %v outside (0,1)", ErrBadArgument, eps)
	}
	if maxCopies < 1 {
		return 0, fmt.Errorf("%w: max copies %d", ErrBadArgument, maxCopies)
	}
	return (float64(maxCopies) + 1 + eps) / (eps * eps), nil
}

// Proposition1Holds numerically checks f(a)/a >= f(b)/b for b >= a > 0 on a
// grid, for any concave speedup-like function f with f(0) >= 0.
func Proposition1Holds(f func(float64) float64, maxX float64, steps int) bool {
	if steps < 2 || maxX <= 0 {
		return false
	}
	type pt struct{ x, ratio float64 }
	prev := pt{}
	first := true
	for i := 1; i <= steps; i++ {
		x := maxX * float64(i) / float64(steps)
		ratio := f(x) / x
		if !first && ratio > prev.ratio+1e-9 {
			return false
		}
		prev = pt{x: x, ratio: ratio}
		first = false
	}
	return true
}
