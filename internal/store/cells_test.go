package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testCell(b byte) Cell {
	return Cell{
		Hash:      testHash(b),
		Payload:   []byte(`{"seed":` + string('0'+b%10) + `,"scheduler_name":"fair"}`),
		CreatedAt: time.UnixMilli(1700000000000 + int64(b)),
	}
}

func TestCellRoundtrip(t *testing.T) {
	s := openStore(t)
	want := testCell(1)
	if err := s.PutCell(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetCell(want.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != want.Hash || string(got.Payload) != string(want.Payload) ||
		!got.CreatedAt.Equal(want.CreatedAt) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, want)
	}
	// Sharded layout: the record sits under its 2-hex prefix.
	if _, err := os.Stat(filepath.Join(s.cellDir, want.Hash[:2], want.Hash)); err != nil {
		t.Fatalf("cell not sharded under its prefix: %v", err)
	}
	// Overwrite is idempotent.
	if err := s.PutCell(want); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if _, err := s.GetCell(testHash(9)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing cell: %v", err)
	}
	if err := s.PutCell(Cell{Hash: "../evil"}); err == nil {
		t.Fatal("invalid hash accepted")
	}
}

func TestCellListAndDelete(t *testing.T) {
	s := openStore(t)
	for b := byte(0); b < 4; b++ {
		if err := s.PutCell(testCell(b)); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := s.ListCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("listed %d cells, want 4", len(infos))
	}
	for _, info := range infos {
		if info.Bytes <= 0 || info.CreatedAt.IsZero() {
			t.Fatalf("listing lost size accounting: %+v", info)
		}
	}
	if err := s.DeleteCell(testHash(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteCell(testHash(0)); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	infos, err = s.ListCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("listed %d cells after delete, want 3", len(infos))
	}
}

func TestCellCorruptQuarantined(t *testing.T) {
	s := openStore(t)
	c := testCell(2)
	if err := s.PutCell(c); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.cellDir, c.Hash[:2], c.Hash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x40 // flip a payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetCell(c.Hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped cell read as %v, want ErrCorrupt", err)
	}
	// Quarantined, not deleted — and the next read is a clean miss.
	if _, err := os.Stat(filepath.Join(s.quarDir, c.Hash+".0")); err != nil {
		t.Fatalf("corrupt cell not quarantined: %v", err)
	}
	if _, err := s.GetCell(c.Hash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second read: %v, want ErrNotFound", err)
	}
	// A fresh put heals the entry.
	if err := s.PutCell(c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetCell(c.Hash); err != nil {
		t.Fatalf("healed cell: %v", err)
	}
}

func TestSpecRoundtrip(t *testing.T) {
	s := openStore(t)
	canonical := []byte(`{"version":1,"workload":{"rows":[]}}`)
	sum := sha256.Sum256(canonical)
	hash := hex.EncodeToString(sum[:])
	if err := s.PutSpec(hash, canonical); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetSpec(hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(canonical) {
		t.Fatalf("spec roundtrip mismatch: %s", got)
	}
	infos, err := s.ListSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Hash != hash || infos[0].Bytes != int64(len(canonical)) {
		t.Fatalf("spec listing wrong: %+v", infos)
	}
	if err := s.DeleteSpec(hash); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSpec(hash); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s.GetSpec(hash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted spec read as %v", err)
	}
}

func TestSpecSelfVerifying(t *testing.T) {
	s := openStore(t)
	// A record whose bytes do not hash to its name is corrupt by definition.
	hash := testHash(3)
	if err := s.PutSpec(hash, []byte("not the preimage of that hash")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetSpec(hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched spec read as %v, want ErrCorrupt", err)
	}
	if _, err := s.GetSpec(hash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined spec read as %v, want ErrNotFound", err)
	}
}

func TestCellTiersClosedStore(t *testing.T) {
	s := openStore(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCell(testCell(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("PutCell on closed store: %v", err)
	}
	if _, err := s.GetCell(testHash(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("GetCell on closed store: %v", err)
	}
	if _, err := s.ListCells(); !errors.Is(err, ErrClosed) {
		t.Errorf("ListCells on closed store: %v", err)
	}
	if err := s.PutSpec(testHash(1), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("PutSpec on closed store: %v", err)
	}
	if _, err := s.ListSpecs(); !errors.Is(err, ErrClosed) {
		t.Errorf("ListSpecs on closed store: %v", err)
	}
}

func TestCellSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := testCell(5)
	if err := s.PutCell(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.GetCell(c.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != string(c.Payload) {
		t.Fatal("cell payload did not survive reopen")
	}
	// Junk in tmp/ from a crash mid-publish is swept by Open and never
	// visible as a cell.
	if err := os.WriteFile(filepath.Join(dir, "tmp", "leftover"), []byte("x"), 0o644); err == nil {
		s2.Close()
		s3, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s3.Close()
		if _, err := os.Stat(filepath.Join(dir, "tmp", "leftover")); !os.IsNotExist(err) {
			t.Fatal("tmp leftover not swept on reopen")
		}
	}
}

func TestWalkTierSkipsJunk(t *testing.T) {
	s := openStore(t)
	if err := s.PutCell(testCell(1)); err != nil {
		t.Fatal(err)
	}
	// Junk that must not surface: a non-hash file, a wrong-prefix record, a
	// stray directory.
	if err := os.WriteFile(filepath.Join(s.cellDir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	wrong := filepath.Join(s.cellDir, "ff")
	if err := os.MkdirAll(wrong, 0o755); err != nil {
		t.Fatal(err)
	}
	misfiled := testHash(1) // prefix "ab", filed under ff/
	if !strings.HasPrefix(misfiled, "ab") {
		t.Fatal("test hash prefix changed")
	}
	if err := os.WriteFile(filepath.Join(wrong, misfiled), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := s.ListCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("listing surfaced junk: %+v", infos)
	}
}

func TestHasCell(t *testing.T) {
	s := openStore(t)
	c := testCell(3)
	if s.HasCell(c.Hash) {
		t.Fatal("HasCell true before Put")
	}
	if err := s.PutCell(c); err != nil {
		t.Fatal(err)
	}
	if !s.HasCell(c.Hash) {
		t.Fatal("HasCell false after Put")
	}
	if s.HasCell(testHash(9)) {
		t.Fatal("HasCell true for a missing hash")
	}
	if s.HasCell("../evil") {
		t.Fatal("HasCell true for an invalid hash")
	}
	if err := s.DeleteCell(c.Hash); err != nil {
		t.Fatal(err)
	}
	if s.HasCell(c.Hash) {
		t.Fatal("HasCell true after Delete")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.HasCell(c.Hash) {
		t.Fatal("HasCell true on a closed store")
	}
}
