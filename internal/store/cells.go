package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// Cell-level tier: alongside whole-matrix artifacts the store keeps two
// smaller content-addressed namespaces —
//
//	cells/<hh>/<hash>  one JSON record per simulated matrix cell, keyed by
//	                   the cell content hash (internal/service/spec.CellHash)
//	specs/<hh>/<hash>  the canonical spec bytes of matrices that are still
//	                   executing, keyed by the matrix hash, so a restart can
//	                   requeue interrupted jobs instead of failing them
//
// Both share the artifact tier's discipline: writes are staged in tmp/,
// fsync'd, and renamed into place (a reader observes no entry or a complete
// one), entries are sharded by the first two hex digits of their hash, and
// records that fail verification are quarantined and report ErrCorrupt so
// the caller recomputes. Cell records carry a size and payload checksum;
// spec records are self-verifying — their file name is the SHA-256 of their
// contents.

// Cell is one content-addressed cell record: the coordinate-independent
// payload of one simulated matrix cell, keyed by its cell content hash.
type Cell struct {
	// Hash is the cell content address (lowercase hex SHA-256).
	Hash string
	// Payload is the canonical JSON of the cell outcome
	// (runner.CellPayload).
	Payload []byte
	// CreatedAt is when the cell was computed; it anchors TTL expiry and
	// oldest-first byte-budget eviction.
	CreatedAt time.Time
}

// CellInfo is the metadata summary of one stored cell, as listed for GC.
type CellInfo struct {
	Hash      string
	Bytes     int64
	CreatedAt time.Time
}

// cellRecord is the on-disk form of a cell. The payload checksum lets reads
// detect truncation and bit rot without a separate metadata file.
type cellRecord struct {
	Hash        string          `json:"hash"`
	CreatedAtMs int64           `json:"created_at_ms"`
	Size        int64           `json:"size"`
	SHA256      string          `json:"sha256"`
	Payload     json.RawMessage `json:"payload"`
}

// cellPath is where a cell record lives, sharded like artifact entries.
func (s *Store) cellPath(hash string) string {
	return filepath.Join(s.cellDir, hash[:2], hash)
}

// specPath is where a spec record lives.
func (s *Store) specPath(hash string) string {
	return filepath.Join(s.specDir, hash[:2], hash)
}

// PutCell atomically writes one cell record: staged under tmp/, fsync'd,
// and renamed into cells/<hh>/. Replacing an existing record is harmless —
// equal cell hashes mean equal payloads (the runner is deterministic).
func (s *Store) PutCell(c Cell) error {
	if err := validHash(c.Hash); err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	sum := checksum(c.Payload)
	rec, err := json.Marshal(cellRecord{
		Hash:        c.Hash,
		CreatedAtMs: c.CreatedAt.UnixMilli(),
		Size:        sum.Size,
		SHA256:      sum.SHA256,
		Payload:     json.RawMessage(c.Payload),
	})
	if err != nil {
		return fmt.Errorf("store: encode cell: %w", err)
	}
	return s.publishFile(s.cellPath(c.Hash), rec)
}

// GetCell reads and verifies the cell stored under hash. A missing record
// reports ErrNotFound; a record that fails verification is quarantined and
// reports ErrCorrupt.
func (s *Store) GetCell(hash string) (Cell, error) {
	if err := validHash(hash); err != nil {
		return Cell{}, err
	}
	if s.isClosed() {
		return Cell{}, ErrClosed
	}
	data, err := os.ReadFile(s.cellPath(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return Cell{}, fmt.Errorf("%w: cell %s", ErrNotFound, hash)
	}
	if err != nil {
		return Cell{}, fmt.Errorf("store: read cell: %w", err)
	}
	var rec cellRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return Cell{}, s.quarantineFile(s.cellPath(hash), hash, "bad cell record: "+err.Error())
	}
	if rec.Hash != hash {
		return Cell{}, s.quarantineFile(s.cellPath(hash), hash,
			fmt.Sprintf("cell record names hash %s", rec.Hash))
	}
	if got := checksum(rec.Payload); got.Size != rec.Size || got.SHA256 != rec.SHA256 {
		return Cell{}, s.quarantineFile(s.cellPath(hash), hash, "cell payload checksum mismatch")
	}
	return Cell{
		Hash:      hash,
		Payload:   []byte(rec.Payload),
		CreatedAt: time.UnixMilli(rec.CreatedAtMs),
	}, nil
}

// HasCell reports whether a cell record exists under hash without reading
// or verifying it. It is the cheap existence probe behind SRPT job sizing
// (counting uncached cells); a record that later fails verification still
// degrades to recomputation at lookup time, so a false positive here only
// perturbs a scheduling estimate, never a result.
func (s *Store) HasCell(hash string) bool {
	if validHash(hash) != nil || s.isClosed() {
		return false
	}
	st, err := os.Stat(s.cellPath(hash))
	return err == nil && st.Mode().IsRegular()
}

// DeleteCell removes the cell stored under hash; deleting a missing cell is
// not an error.
func (s *Store) DeleteCell(hash string) error {
	return s.deleteFile(s.cellPath(hash), hash)
}

// ListCells summarizes every stored cell record. Records whose envelope
// cannot be decoded are quarantined and skipped, never failing the listing;
// payload checksums are deliberately not reverified here (GetCell does) so
// a GC sweep over a large tier stays cheap.
func (s *Store) ListCells() ([]CellInfo, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	var infos []CellInfo
	err := s.walkTier(s.cellDir, func(hash, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			_ = s.quarantineFile(path, hash, "listing: "+err.Error())
			return
		}
		var rec cellRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.Hash != hash {
			_ = s.quarantineFile(path, hash, "listing: bad cell record")
			return
		}
		infos = append(infos, CellInfo{
			Hash:      hash,
			Bytes:     int64(len(data)),
			CreatedAt: time.UnixMilli(rec.CreatedAtMs),
		})
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}

// SpecInfo is the metadata summary of one stored spec record.
type SpecInfo struct {
	Hash      string
	Bytes     int64
	CreatedAt time.Time // file modification time (when the spec was stored)
}

// PutSpec atomically stores the canonical spec bytes under their matrix
// hash, making an in-flight matrix recoverable after a crash. The caller
// guarantees hash == SHA-256(canonical) (internal/service/spec.Hash); reads
// reverify it.
func (s *Store) PutSpec(hash string, canonical []byte) error {
	if err := validHash(hash); err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	return s.publishFile(s.specPath(hash), canonical)
}

// GetSpec reads the canonical spec bytes stored under hash. The content is
// self-verifying: bytes whose SHA-256 does not match the name are
// quarantined and report ErrCorrupt.
func (s *Store) GetSpec(hash string) ([]byte, error) {
	if err := validHash(hash); err != nil {
		return nil, err
	}
	if s.isClosed() {
		return nil, ErrClosed
	}
	data, err := os.ReadFile(s.specPath(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: spec %s", ErrNotFound, hash)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read spec: %w", err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hash {
		return nil, s.quarantineFile(s.specPath(hash), hash, "spec bytes do not hash to their name")
	}
	return data, nil
}

// DeleteSpec removes the spec stored under hash; deleting a missing spec is
// not an error.
func (s *Store) DeleteSpec(hash string) error {
	return s.deleteFile(s.specPath(hash), hash)
}

// ListSpecs summarizes every stored spec record.
func (s *Store) ListSpecs() ([]SpecInfo, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	var infos []SpecInfo
	err := s.walkTier(s.specDir, func(hash, path string) {
		st, err := os.Stat(path)
		if err != nil {
			return
		}
		infos = append(infos, SpecInfo{Hash: hash, Bytes: st.Size(), CreatedAt: st.ModTime()})
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}

// walkTier visits every hash-named file of a sharded single-file tier. One
// unreadable prefix directory skips its entries for this pass without
// failing the walk (mirroring ListArtifacts).
func (s *Store) walkTier(root string, visit func(hash, path string)) error {
	prefixes, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("store: list %s: %w", filepath.Base(root), err)
	}
	for _, p := range prefixes {
		if !p.IsDir() || !validPrefix(p.Name()) {
			continue
		}
		dirents, err := os.ReadDir(filepath.Join(root, p.Name()))
		if err != nil {
			continue
		}
		for _, e := range dirents {
			hash := e.Name()
			if e.IsDir() || validHash(hash) != nil || hash[:2] != p.Name() {
				continue
			}
			visit(hash, filepath.Join(root, p.Name(), hash))
		}
	}
	return nil
}

// publishFile atomically writes one file of a sharded tier: staged in tmp/,
// fsync'd, renamed over the destination (rename replaces files atomically),
// then the prefix directory is fsync'd.
func (s *Store) publishFile(dst string, data []byte) error {
	stage, err := os.CreateTemp(s.tmpDir, filepath.Base(dst)+".")
	if err != nil {
		return fmt.Errorf("store: stage: %w", err)
	}
	stagePath := stage.Name()
	cleanup := func(err error) error {
		os.Remove(stagePath)
		return err
	}
	if _, err := stage.Write(data); err != nil {
		stage.Close()
		return cleanup(fmt.Errorf("store: stage write: %w", err))
	}
	if err := stage.Sync(); err != nil {
		stage.Close()
		return cleanup(fmt.Errorf("store: stage sync: %w", err))
	}
	if err := stage.Close(); err != nil {
		return cleanup(fmt.Errorf("store: stage close: %w", err))
	}
	pfx := filepath.Dir(dst)
	if err := os.MkdirAll(pfx, 0o755); err != nil {
		return cleanup(fmt.Errorf("store: prefix dir: %w", err))
	}
	if err := os.Rename(stagePath, dst); err != nil {
		return cleanup(fmt.Errorf("store: publish: %w", err))
	}
	if err := syncDir(pfx); err != nil {
		return fmt.Errorf("store: sync prefix dir: %w", err)
	}
	return nil
}

// deleteFile removes one file of a sharded tier; missing files (and missing
// prefix directories) are not errors.
func (s *Store) deleteFile(path, hash string) error {
	if err := validHash(hash); err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete: %w", err)
	}
	err := syncDir(filepath.Dir(path))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// quarantineFile moves a damaged single-file record into quarantine/ so it
// cannot fail the same lookup twice, and returns the ErrCorrupt to hand to
// the caller.
func (s *Store) quarantineFile(src, hash, reason string) error {
	for n := 0; n < 1000; n++ {
		dst := filepath.Join(s.quarDir, fmt.Sprintf("%s.%d", hash, n))
		if _, err := os.Stat(dst); err == nil {
			continue // slot taken by an earlier corruption of the same hash
		}
		err := os.Rename(src, dst)
		if err == nil || errors.Is(err, fs.ErrNotExist) {
			break // moved, or a concurrent reader already quarantined it
		}
	}
	return fmt.Errorf("%w: %s (%s)", ErrCorrupt, hash, reason)
}
