package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// JobRecord is one line of the append-only job log: a snapshot of a job's
// client-visible state at a transition. The log holds every transition a job
// went through; replay collapses it to the latest record per job.
type JobRecord struct {
	ID          string `json:"id"`
	Hash        string `json:"hash"`
	State       string `json:"state"`
	Cached      bool   `json:"cached,omitempty"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	Error       string `json:"error,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	UpdatedAtMs int64  `json:"updated_at_ms"`
	// Lifecycle timestamps (Unix milliseconds; 0 = not reached). They let a
	// recovered job keep reporting when it was submitted, started, and
	// finished across restarts, and omitempty keeps pre-timestamp log lines
	// decoding (and new lines for old jobs encoding) unchanged.
	SubmittedAtMs int64 `json:"submitted_at_ms,omitempty"`
	StartedAtMs   int64 `json:"started_at_ms,omitempty"`
	FinishedAtMs  int64 `json:"finished_at_ms,omitempty"`
}

// AppendJob appends one record to the job log. With durable set the record
// is fsync'd before returning (surviving power loss); without it the write
// still survives a process crash but a machine crash may lose it. Callers
// reserve durable for records worth that cost — terminal states — since an
// undelivered queued/running record just reads as a job that never arrived.
func (s *Store) AppendJob(rec JobRecord, durable bool) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode job record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.logf.Write(line); err != nil {
		return fmt.Errorf("store: append job: %w", err)
	}
	s.appends++
	if durable {
		if err := s.logf.Sync(); err != nil {
			return fmt.Errorf("store: sync job log: %w", err)
		}
	}
	return nil
}

// PendingAppends reports how many records have been appended since the last
// compaction (or Open) — a cheap growth signal for compaction policy.
func (s *Store) PendingAppends() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends
}

// ReplayJobs reads the job log and returns the latest record of every job,
// in order of first appearance. Undecodable lines — a partial final line
// from a crash mid-append, or damage — are skipped, never failing the
// replay of intact records.
func (s *Store) ReplayJobs() ([]JobRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	data, err := os.ReadFile(s.jobLogPath())
	if err != nil {
		return nil, fmt.Errorf("store: read job log: %w", err)
	}
	return collapseRecords(data), nil
}

// CompactJobs rewrites the log with only the latest record of each job for
// which keep returns true, and reports how many jobs were dropped. The
// rewrite is atomic (temp file + rename) and the append handle is reopened
// on the new file.
func (s *Store) CompactJobs(keep func(JobRecord) bool) (dropped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	data, err := os.ReadFile(s.jobLogPath())
	if err != nil {
		return 0, fmt.Errorf("store: read job log: %w", err)
	}
	var out bytes.Buffer
	for _, rec := range collapseRecords(data) {
		if keep != nil && !keep(rec) {
			dropped++
			continue
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return 0, fmt.Errorf("store: encode job record: %w", err)
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	tmpPath := s.jobLogPath() + ".tmp"
	if err := writeFileSync(tmpPath, out.Bytes()); err != nil {
		return 0, fmt.Errorf("store: write compacted log: %w", err)
	}
	if err := os.Rename(tmpPath, s.jobLogPath()); err != nil {
		os.Remove(tmpPath)
		return 0, fmt.Errorf("store: publish compacted log: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, fmt.Errorf("store: sync data dir: %w", err)
	}
	// The old append handle points at the unlinked file; reopen on the new one.
	old := s.logf
	s.logf, err = os.OpenFile(s.jobLogPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.logf = old // keep appending to the unlinked file rather than crash
		return 0, fmt.Errorf("store: reopen job log: %w", err)
	}
	old.Close()
	s.appends = 0
	return dropped, nil
}

// collapseRecords scans JSONL bytes to the latest record per job ID, in
// order of first appearance, skipping undecodable lines.
func collapseRecords(data []byte) []JobRecord {
	latest := make(map[string]int)
	var recs []JobRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			continue
		}
		if i, ok := latest[rec.ID]; ok {
			recs[i] = rec
			continue
		}
		latest[rec.ID] = len(recs)
		recs = append(recs, rec)
	}
	return recs
}
