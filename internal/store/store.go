// Package store persists the simulation service's state across restarts: a
// disk-backed, content-addressed artifact store (one directory per spec hash
// holding the deterministic JSON/CSV/aggregate-CSV artifact bytes plus a
// metadata record) and an append-only job log from which the service rebuilds
// its job table on startup.
//
// Crash atomicity: artifacts are staged in a temporary directory, every file
// is fsync'd before the staging directory is renamed into place, and the
// parent directory is fsync'd after the rename, so a reader observes either
// no entry or a complete one. Entries that fail verification on read — a
// truncated or bit-flipped artifact file, undecodable metadata, a hash
// mismatch — are quarantined (moved to quarantine/ for inspection) rather
// than deleted, and report ErrCorrupt so the caller can recompute; a corrupt
// or missing entry never affects lookups of other hashes. Partial staging
// directories left behind by a crash are swept on Open.
//
// Layout under the data directory:
//
//	artifacts/<hh>/<hash>/  meta.json, matrix.json, cells.csv, aggregate.csv
//	cells/<hh>/<hash>       one JSON record per simulated cell (see cells.go)
//	specs/<hh>/<hash>       canonical spec bytes of in-flight matrices
//	quarantine/             corrupt entries moved aside with a unique suffix
//	tmp/                    staging area for atomic writes (swept on Open)
//	jobs.log                append-only JSONL job records, periodically compacted
//
// Entries are sharded by the first two hex digits of the hash (<hh>), so
// entry counts per directory stay ~1/256th of the total and never brush
// filesystem per-directory limits. Data directories written by builds that
// used the older flat layout (artifacts/<hash>/) are migrated transparently:
// Open renames every flat entry into its prefix directory before serving
// reads, so old stores keep their warm cache.
//
// The spec hash is the on-disk key: internal/service/spec guarantees its
// stability across releases (see the package documentation there), which is
// what makes a data directory written by one build readable by the next.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Errors reported by the store.
var (
	// ErrNotFound reports a hash with no stored artifact entry.
	ErrNotFound = errors.New("store: artifact not found")
	// ErrCorrupt reports an entry that failed verification and has been
	// moved to quarantine/. The caller should recompute.
	ErrCorrupt = errors.New("store: artifact corrupt")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("store: closed")
)

// Artifact file names inside an entry directory.
const (
	metaFile      = "meta.json"
	jsonFile      = "matrix.json"
	csvFile       = "cells.csv"
	aggregateFile = "aggregate.csv"
)

// Artifacts is one content-addressed entry: the deterministic artifact bytes
// of a completed run matrix, keyed by its spec hash.
type Artifacts struct {
	// Hash is the spec content address (lowercase hex SHA-256).
	Hash string
	// JSON, CSV, and AggregateCSV are the three artifact renderings.
	JSON         []byte
	CSV          []byte
	AggregateCSV []byte
	// Cells is the matrix size, carried for metrics.
	Cells int
	// CreatedAt is when the matrix was computed. It survives restarts and
	// anchors TTL expiry.
	CreatedAt time.Time
}

// ArtifactInfo is the metadata summary of one stored entry, as listed for GC
// sweeps.
type ArtifactInfo struct {
	Hash      string
	Cells     int
	Bytes     int64
	CreatedAt time.Time
}

// meta is the on-disk metadata record of an entry. Sizes and checksums let
// reads detect truncation and bit rot.
type meta struct {
	Hash        string              `json:"hash"`
	Cells       int                 `json:"cells"`
	CreatedAtMs int64               `json:"created_at_ms"`
	Files       map[string]fileMeta `json:"files"`
}

type fileMeta struct {
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Store is a disk-backed artifact store plus job log rooted at one data
// directory. All methods are safe for concurrent use. Artifact operations
// rely on atomic renames; the job log is guarded by a mutex.
type Store struct {
	dir     string
	artDir  string
	cellDir string
	specDir string
	tmpDir  string
	quarDir string

	mu      sync.Mutex // guards the job log and closed
	logf    *os.File
	appends int // records appended since the last compaction
	closed  bool
}

// Open creates (if needed) and opens the data directory, sweeps staging
// leftovers from a previous crash, and opens the job log for appending.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		artDir:  filepath.Join(dir, "artifacts"),
		cellDir: filepath.Join(dir, "cells"),
		specDir: filepath.Join(dir, "specs"),
		tmpDir:  filepath.Join(dir, "tmp"),
		quarDir: filepath.Join(dir, "quarantine"),
	}
	for _, d := range []string{s.artDir, s.cellDir, s.specDir, s.tmpDir, s.quarDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	// A crash between staging and rename leaves a partial directory in tmp/.
	// It was never visible under artifacts/, so removal cannot affect lookups.
	leftovers, err := os.ReadDir(s.tmpDir)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	for _, e := range leftovers {
		if err := os.RemoveAll(filepath.Join(s.tmpDir, e.Name())); err != nil {
			return nil, fmt.Errorf("store: sweep tmp: %w", err)
		}
	}
	if err := s.migrateFlatLayout(); err != nil {
		return nil, err
	}
	if err := healJobLog(s.jobLogPath()); err != nil {
		return nil, err
	}
	s.logf, err = os.OpenFile(s.jobLogPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open job log: %w", err)
	}
	return s, nil
}

// healJobLog terminates a torn trailing line left by a crash mid-append so
// the partial line cannot swallow the next record appended after it (replay
// already skips the undecodable line itself).
func healJobLog(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: heal job log: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: heal job log: %w", err)
	}
	if st.Size() == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		return fmt.Errorf("store: heal job log: %w", err)
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := f.WriteAt([]byte{'\n'}, st.Size()); err != nil {
		return fmt.Errorf("store: heal job log: %w", err)
	}
	return f.Sync()
}

// migrateFlatLayout upgrades a data directory written by a pre-sharding
// build: every entry sitting directly under artifacts/ (its name is a full
// hash, which can never collide with the two-character prefix directories)
// is renamed into its hash-prefix subdirectory. Runs before the job log
// opens, so a migrated store is indistinguishable from a natively sharded
// one by the time any read can happen.
func (s *Store) migrateFlatLayout() error {
	dirents, err := os.ReadDir(s.artDir)
	if err != nil {
		return fmt.Errorf("store: migrate layout: %w", err)
	}
	moved := false
	for _, e := range dirents {
		hash := e.Name()
		if !e.IsDir() || validHash(hash) != nil {
			continue // prefix dirs (2 chars) and junk fail validHash
		}
		pfx := filepath.Join(s.artDir, hash[:2])
		if err := os.MkdirAll(pfx, 0o755); err != nil {
			return fmt.Errorf("store: migrate layout: %w", err)
		}
		dst := filepath.Join(pfx, hash)
		// A destination can only pre-exist if a previous migration crashed
		// between rename and sync; equal hashes mean equal bytes, so the
		// already-migrated copy wins and the flat leftover is dropped.
		if _, statErr := os.Stat(dst); statErr == nil {
			if err := os.RemoveAll(filepath.Join(s.artDir, hash)); err != nil {
				return fmt.Errorf("store: migrate layout: %w", err)
			}
			continue
		}
		if err := os.Rename(filepath.Join(s.artDir, hash), dst); err != nil {
			return fmt.Errorf("store: migrate layout: %w", err)
		}
		if err := syncDir(pfx); err != nil {
			return fmt.Errorf("store: migrate layout: %w", err)
		}
		moved = true
	}
	if moved {
		if err := syncDir(s.artDir); err != nil {
			return fmt.Errorf("store: migrate layout: %w", err)
		}
	}
	return nil
}

// entryDir is where an entry lives: sharded under the 2-hex-digit prefix of
// its hash. Callers have run validHash, so hash[:2] is safe.
func (s *Store) entryDir(hash string) string {
	return filepath.Join(s.artDir, hash[:2], hash)
}

// Dir returns the data directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobLogPath() string { return filepath.Join(s.dir, "jobs.log") }

// Close syncs and closes the job log. It is idempotent; artifact methods and
// appends fail with ErrClosed afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.logf.Sync(); err != nil {
		s.logf.Close()
		return fmt.Errorf("store: close: %w", err)
	}
	return s.logf.Close()
}

// validHash rejects anything that is not a lowercase-hex digest, both to
// catch caller bugs and to keep path construction traversal-safe.
func validHash(hash string) error {
	if len(hash) < 16 {
		return fmt.Errorf("store: invalid hash %q", hash)
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: invalid hash %q", hash)
		}
	}
	return nil
}

// PutArtifacts atomically writes one entry: the files are staged under tmp/,
// fsync'd, and renamed into artifacts/<hash> as a unit. An existing entry
// under the same hash is replaced — harmless, because equal hashes mean equal
// bytes (the runner is deterministic).
func (s *Store) PutArtifacts(a Artifacts) error {
	if err := validHash(a.Hash); err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	m := meta{
		Hash:        a.Hash,
		Cells:       a.Cells,
		CreatedAtMs: a.CreatedAt.UnixMilli(),
		Files: map[string]fileMeta{
			jsonFile:      checksum(a.JSON),
			csvFile:       checksum(a.CSV),
			aggregateFile: checksum(a.AggregateCSV),
		},
	}
	metaBytes, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encode meta: %w", err)
	}
	stage, err := os.MkdirTemp(s.tmpDir, a.Hash+".")
	if err != nil {
		return fmt.Errorf("store: stage: %w", err)
	}
	cleanup := func(err error) error {
		os.RemoveAll(stage)
		return err
	}
	for name, data := range map[string][]byte{
		jsonFile:      a.JSON,
		csvFile:       a.CSV,
		aggregateFile: a.AggregateCSV,
		metaFile:      metaBytes,
	} {
		if err := writeFileSync(filepath.Join(stage, name), data); err != nil {
			return cleanup(fmt.Errorf("store: stage %s: %w", name, err))
		}
	}
	if err := syncDir(stage); err != nil {
		return cleanup(fmt.Errorf("store: sync stage: %w", err))
	}
	dst := s.entryDir(a.Hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return cleanup(fmt.Errorf("store: prefix dir: %w", err))
	}
	if err := os.Rename(stage, dst); err != nil {
		// The destination exists (a concurrent writer won the race, or a
		// TTL-expired entry is being refreshed). Clear it and retry once;
		// determinism makes the replacement byte-identical.
		if rmErr := os.RemoveAll(dst); rmErr != nil {
			return cleanup(fmt.Errorf("store: replace entry: %w", rmErr))
		}
		if err := os.Rename(stage, dst); err != nil {
			return cleanup(fmt.Errorf("store: publish entry: %w", err))
		}
	}
	// Sync the prefix dir (the rename) and artifacts/ (in case the prefix
	// dir was just created) so the published entry survives a crash.
	if err := syncDir(filepath.Dir(dst)); err != nil {
		return fmt.Errorf("store: sync prefix dir: %w", err)
	}
	if err := syncDir(s.artDir); err != nil {
		return fmt.Errorf("store: sync artifacts dir: %w", err)
	}
	return nil
}

// GetArtifacts reads and verifies the entry stored under hash. A missing
// entry reports ErrNotFound; an entry that fails verification is moved to
// quarantine/ and reports ErrCorrupt. Neither affects other entries.
func (s *Store) GetArtifacts(hash string) (Artifacts, error) {
	if err := validHash(hash); err != nil {
		return Artifacts{}, err
	}
	if s.isClosed() {
		return Artifacts{}, ErrClosed
	}
	dir := s.entryDir(hash)
	metaBytes, err := os.ReadFile(filepath.Join(dir, metaFile))
	if errors.Is(err, fs.ErrNotExist) {
		if _, statErr := os.Stat(dir); statErr == nil {
			// Directory present but no metadata: a damaged entry.
			return Artifacts{}, s.quarantine(hash, "missing metadata")
		}
		return Artifacts{}, fmt.Errorf("%w: %s", ErrNotFound, hash)
	}
	if err != nil {
		return Artifacts{}, fmt.Errorf("store: read meta: %w", err)
	}
	var m meta
	if err := json.Unmarshal(metaBytes, &m); err != nil {
		return Artifacts{}, s.quarantine(hash, "bad metadata: "+err.Error())
	}
	if m.Hash != hash {
		return Artifacts{}, s.quarantine(hash, fmt.Sprintf("metadata names hash %s", m.Hash))
	}
	a := Artifacts{Hash: hash, Cells: m.Cells, CreatedAt: time.UnixMilli(m.CreatedAtMs)}
	for _, f := range []struct {
		name string
		dst  *[]byte
	}{
		{jsonFile, &a.JSON},
		{csvFile, &a.CSV},
		{aggregateFile, &a.AggregateCSV},
	} {
		want, ok := m.Files[f.name]
		if !ok {
			return Artifacts{}, s.quarantine(hash, "metadata missing "+f.name)
		}
		data, err := os.ReadFile(filepath.Join(dir, f.name))
		if err != nil {
			return Artifacts{}, s.quarantine(hash, f.name+": "+err.Error())
		}
		if got := checksum(data); got != want {
			return Artifacts{}, s.quarantine(hash,
				fmt.Sprintf("%s: %d bytes, want %d (or checksum mismatch)", f.name, got.Size, want.Size))
		}
		*f.dst = data
	}
	return a, nil
}

// DeleteArtifacts removes the entry stored under hash; deleting a missing
// entry is not an error.
func (s *Store) DeleteArtifacts(hash string) error {
	if err := validHash(hash); err != nil {
		return err
	}
	if s.isClosed() {
		return ErrClosed
	}
	if err := os.RemoveAll(s.entryDir(hash)); err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	err := syncDir(filepath.Join(s.artDir, hash[:2]))
	if errors.Is(err, fs.ErrNotExist) {
		return nil // nothing was ever stored under this prefix
	}
	if err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	return nil
}

// ListArtifacts summarizes every stored entry from its metadata record.
// Entries whose metadata cannot be read are quarantined and skipped, never
// failing the listing.
func (s *Store) ListArtifacts() ([]ArtifactInfo, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	prefixes, err := os.ReadDir(s.artDir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var infos []ArtifactInfo
	for _, p := range prefixes {
		if !p.IsDir() || !validPrefix(p.Name()) {
			continue
		}
		dirents, err := os.ReadDir(filepath.Join(s.artDir, p.Name()))
		if err != nil {
			// One unreadable prefix directory must not fail the whole
			// listing (the GC sweep depends on it): its entries are
			// skipped this pass, every other prefix keeps serving.
			continue
		}
		for _, e := range dirents {
			hash := e.Name()
			if !e.IsDir() || validHash(hash) != nil || hash[:2] != p.Name() {
				continue
			}
			metaBytes, err := os.ReadFile(filepath.Join(s.entryDir(hash), metaFile))
			if err != nil {
				_ = s.quarantine(hash, "listing: "+err.Error())
				continue
			}
			var m meta
			if err := json.Unmarshal(metaBytes, &m); err != nil || m.Hash != hash {
				_ = s.quarantine(hash, "listing: bad metadata")
				continue
			}
			info := ArtifactInfo{Hash: hash, Cells: m.Cells, CreatedAt: time.UnixMilli(m.CreatedAtMs)}
			for _, f := range m.Files {
				info.Bytes += f.Size
			}
			infos = append(infos, info)
		}
	}
	return infos, nil
}

// validPrefix recognizes the 2-hex-digit shard directories under artifacts/.
func validPrefix(name string) bool {
	if len(name) != 2 {
		return false
	}
	for _, c := range name {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// quarantine moves a damaged entry out of artifacts/ so it cannot fail the
// same lookup twice, and returns the ErrCorrupt to hand to the caller.
func (s *Store) quarantine(hash, reason string) error {
	src := s.entryDir(hash)
	for n := 0; n < 1000; n++ {
		dst := filepath.Join(s.quarDir, fmt.Sprintf("%s.%d", hash, n))
		err := os.Rename(src, dst)
		if err == nil || errors.Is(err, fs.ErrNotExist) {
			// Moved, or a concurrent reader already quarantined it.
			break
		}
		// The quarantine slot is taken from an earlier corruption of the
		// same hash; try the next suffix.
	}
	return fmt.Errorf("%w: %s (%s)", ErrCorrupt, hash, reason)
}

func (s *Store) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func checksum(data []byte) fileMeta {
	sum := sha256.Sum256(data)
	return fileMeta{Size: int64(len(data)), SHA256: hex.EncodeToString(sum[:])}
}

// writeFileSync writes data and fsyncs before closing, so a rename that
// follows cannot publish a file whose contents are still buffered.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
