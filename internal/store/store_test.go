package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testHash returns a distinct valid-looking 64-hex hash per suffix byte.
func testHash(b byte) string {
	return strings.Repeat("ab", 31) + "0" + string("0123456789abcdef"[b%16])
}

func testArtifacts(b byte) Artifacts {
	return Artifacts{
		Hash:         testHash(b),
		JSON:         []byte(`{"cells":[` + string('0'+b%10) + `]}`),
		CSV:          []byte("scheduler,x\nfair,1\n"),
		AggregateCSV: []byte("scheduler,x,mean\nfair,1,2\n"),
		Cells:        int(b),
		CreatedAt:    time.UnixMilli(1700000000000 + int64(b)),
	}
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := openStore(t)
	want := testArtifacts(1)
	if err := s.PutArtifacts(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetArtifacts(want.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.JSON, want.JSON) || !bytes.Equal(got.CSV, want.CSV) ||
		!bytes.Equal(got.AggregateCSV, want.AggregateCSV) {
		t.Fatal("artifact bytes changed across the store")
	}
	if got.Cells != want.Cells || !got.CreatedAt.Equal(want.CreatedAt) {
		t.Fatalf("metadata %d/%v, want %d/%v", got.Cells, got.CreatedAt, want.Cells, want.CreatedAt)
	}

	// Replacement under the same hash succeeds (TTL refresh path).
	if err := s.PutArtifacts(want); err != nil {
		t.Fatalf("replace: %v", err)
	}

	if _, err := s.GetArtifacts(testHash(9)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing entry: %v, want ErrNotFound", err)
	}
	if _, err := s.GetArtifacts("../evil"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("traversal hash accepted: %v", err)
	}
}

func TestListAndDelete(t *testing.T) {
	s := openStore(t)
	for b := byte(1); b <= 3; b++ {
		if err := s.PutArtifacts(testArtifacts(b)); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := s.ListArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("listed %d entries, want 3", len(infos))
	}
	for _, info := range infos {
		if info.Bytes <= 0 || info.CreatedAt.IsZero() {
			t.Fatalf("info %+v not populated", info)
		}
	}
	if err := s.DeleteArtifacts(testHash(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteArtifacts(testHash(2)); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if infos, _ = s.ListArtifacts(); len(infos) != 2 {
		t.Fatalf("listed %d entries after delete, want 2", len(infos))
	}
	if _, err := s.GetArtifacts(testHash(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted entry: %v", err)
	}
}

// corruptionCase damages one stored entry and expects quarantine + ErrCorrupt
// while a sibling entry keeps serving.
func corruptionCase(t *testing.T, damage func(t *testing.T, dir string)) {
	t.Helper()
	s := openStore(t)
	victim, witness := testArtifacts(1), testArtifacts(2)
	for _, a := range []Artifacts{victim, witness} {
		if err := s.PutArtifacts(a); err != nil {
			t.Fatal(err)
		}
	}
	damage(t, filepath.Join(s.Dir(), "artifacts", victim.Hash[:2], victim.Hash))

	if _, err := s.GetArtifacts(victim.Hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt entry: %v, want ErrCorrupt", err)
	}
	// The entry was moved aside: the next lookup is a plain miss and the
	// quarantine directory holds the damaged bytes for inspection.
	if _, err := s.GetArtifacts(victim.Hash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine: %v, want ErrNotFound", err)
	}
	quarantined, err := os.ReadDir(filepath.Join(s.Dir(), "quarantine"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine holds %d entries (%v), want 1", len(quarantined), err)
	}
	// Unrelated lookups are unaffected.
	got, err := s.GetArtifacts(witness.Hash)
	if err != nil || !bytes.Equal(got.JSON, witness.JSON) {
		t.Fatalf("witness lookup after quarantine: %v", err)
	}
}

func TestCorruptTruncatedArtifact(t *testing.T) {
	corruptionCase(t, func(t *testing.T, dir string) {
		if err := os.Truncate(filepath.Join(dir, "matrix.json"), 3); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptBitFlip(t *testing.T) {
	corruptionCase(t, func(t *testing.T, dir string) {
		path := filepath.Join(dir, "cells.csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptBadMetaJSON(t *testing.T) {
	corruptionCase(t, func(t *testing.T, dir string) {
		if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptMissingMeta(t *testing.T) {
	corruptionCase(t, func(t *testing.T, dir string) {
		if err := os.Remove(filepath.Join(dir, "meta.json")); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptMissingArtifactFile(t *testing.T) {
	corruptionCase(t, func(t *testing.T, dir string) {
		if err := os.Remove(filepath.Join(dir, "aggregate.csv")); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPartialTempLeftoverSwept simulates a crash between staging and rename:
// the leftover lives under tmp/, is invisible to lookups, and Open removes it.
func TestPartialTempLeftoverSwept(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testArtifacts(1)
	if err := s.PutArtifacts(good); err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(dir, "tmp", testHash(2)+".crash")
	if err := os.MkdirAll(partial, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(partial, "matrix.json"), []byte("part"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The partial write never published, so its hash is simply absent.
	if _, err := s.GetArtifacts(testHash(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial entry visible: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if leftovers, _ := os.ReadDir(filepath.Join(dir, "tmp")); len(leftovers) != 0 {
		t.Fatalf("tmp/ holds %d leftovers after reopen", len(leftovers))
	}
	// The completed entry survived the "crash" and the sweep.
	got, err := s2.GetArtifacts(good.Hash)
	if err != nil || !bytes.Equal(got.JSON, good.JSON) {
		t.Fatalf("good entry after reopen: %v", err)
	}
}

func TestJobLogReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendRec := func(id, state string) {
		t.Helper()
		if err := s.AppendJob(JobRecord{ID: id, Hash: testHash(1), State: state, UpdatedAtMs: 7}, state != "queued" && state != "running"); err != nil {
			t.Fatal(err)
		}
	}
	appendRec("m000001", "queued")
	appendRec("m000001", "running")
	appendRec("m000001", "done")
	appendRec("m000002", "queued")
	appendRec("m000003", "queued")
	appendRec("m000003", "cancelled")

	recs, err := s.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d jobs, want 3: %+v", len(recs), recs)
	}
	// Latest state per job, in order of first appearance.
	for i, want := range []JobRecord{
		{ID: "m000001", State: "done"},
		{ID: "m000002", State: "queued"},
		{ID: "m000003", State: "cancelled"},
	} {
		if recs[i].ID != want.ID || recs[i].State != want.State {
			t.Fatalf("record %d = %+v, want %s/%s", i, recs[i], want.ID, want.State)
		}
	}

	if n := s.PendingAppends(); n != 6 {
		t.Fatalf("pending appends %d, want 6", n)
	}
	dropped, err := s.CompactJobs(func(r JobRecord) bool { return r.State != "cancelled" })
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1", dropped)
	}
	if n := s.PendingAppends(); n != 0 {
		t.Fatalf("pending appends after compaction %d, want 0", n)
	}
	// Appends keep working on the reopened handle, and a fresh Open sees
	// the compacted log plus the new append.
	appendRec("m000004", "queued")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err = s2.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("after compaction + append: %d jobs, want 3: %+v", len(recs), recs)
	}
}

// TestJobLogTornWrite covers a crash mid-append: the partial trailing line
// is skipped and intact records replay.
func TestJobLogTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendJob(JobRecord{ID: "m000001", Hash: testHash(1), State: "done"}, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "jobs.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"m000002","state":"que`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "m000001" {
		t.Fatalf("replay after torn write: %+v", recs)
	}
	// Open healed the torn line with a newline terminator, so the next
	// append lands on a fresh line and is not swallowed by the damage.
	if err := s2.AppendJob(JobRecord{ID: "m000003", Hash: testHash(1), State: "queued"}, false); err != nil {
		t.Fatal(err)
	}
	recs, err = s2.ReplayJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].ID != "m000003" {
		t.Fatalf("append after torn line: %+v", recs)
	}
}

func TestClosedStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := s.PutArtifacts(testArtifacts(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := s.GetArtifacts(testHash(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if err := s.AppendJob(JobRecord{ID: "x"}, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := s.ReplayJobs(); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay after close: %v", err)
	}
}

// TestFlatLayoutMigration pre-seeds a data directory in the pre-sharding
// flat layout (artifacts/<hash>/) and proves Open upgrades it in place:
// every entry is readable and listable afterwards, lives under its
// 2-hex-prefix subdirectory, and the flat path is gone — the warm cache
// survives the layout change.
func TestFlatLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	// Write entries with the current store, then demote them to the flat
	// layout a previous build would have left behind.
	seed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	arts := []Artifacts{testArtifacts(1), testArtifacts(2), testArtifacts(3)}
	for _, a := range arts {
		if err := seed.PutArtifacts(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	artRoot := filepath.Join(dir, "artifacts")
	for _, a := range arts {
		flat := filepath.Join(artRoot, a.Hash)
		if err := os.Rename(filepath.Join(artRoot, a.Hash[:2], a.Hash), flat); err != nil {
			t.Fatal(err)
		}
		// All test hashes share the "ab" prefix; the dir goes once empty.
		_ = os.Remove(filepath.Join(artRoot, a.Hash[:2]))
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, a := range arts {
		got, err := s2.GetArtifacts(a.Hash)
		if err != nil {
			t.Fatalf("migrated entry %s: %v", a.Hash, err)
		}
		if !bytes.Equal(got.JSON, a.JSON) || got.Cells != a.Cells || !got.CreatedAt.Equal(a.CreatedAt) {
			t.Fatalf("migrated entry %s changed", a.Hash)
		}
		if _, err := os.Stat(filepath.Join(artRoot, a.Hash[:2], a.Hash, "meta.json")); err != nil {
			t.Fatalf("entry %s not under its prefix dir: %v", a.Hash, err)
		}
		if _, err := os.Stat(filepath.Join(artRoot, a.Hash)); !os.IsNotExist(err) {
			t.Fatalf("flat path for %s still present (%v)", a.Hash, err)
		}
	}
	infos, err := s2.ListArtifacts()
	if err != nil || len(infos) != len(arts) {
		t.Fatalf("listed %d entries after migration (%v), want %d", len(infos), err, len(arts))
	}
}

// TestFlatMigrationCrashDuplicate models a crash between a migration rename
// and the next Open: the destination already holds the entry while a stale
// flat copy remains. Open keeps the migrated copy and drops the leftover.
func TestFlatMigrationCrashDuplicate(t *testing.T) {
	dir := t.TempDir()
	seed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifacts(4)
	if err := seed.PutArtifacts(a); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	// Duplicate the sharded entry back to the flat location.
	artRoot := filepath.Join(dir, "artifacts")
	flat := filepath.Join(artRoot, a.Hash)
	if err := os.MkdirAll(flat, 0o755); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(artRoot, a.Hash[:2], a.Hash)
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(flat, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(flat); !os.IsNotExist(err) {
		t.Fatalf("flat duplicate survived Open (%v)", err)
	}
	got, err := s2.GetArtifacts(a.Hash)
	if err != nil || !bytes.Equal(got.JSON, a.JSON) {
		t.Fatalf("entry unreadable after duplicate cleanup: %v", err)
	}
}
