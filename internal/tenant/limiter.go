package tenant

import (
	"math"
	"time"
)

// bucket is a classic token bucket: capacity `burst` tokens, refilled at
// `rate` tokens per second, one token consumed per admitted submission.
// rate 0 disables limiting entirely. Not safe for concurrent use; the
// Registry serializes access.
type bucket struct {
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time // last refill; zero until the first take
}

func newBucket(rate float64, burst int) bucket {
	return bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take consumes one token if available. When the bucket is empty it leaves
// state untouched and reports how long until a whole token accrues.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}
