package tenant

import "testing"

// FuzzParseTenants asserts the tenants-config parser never panics and that
// every accepted config round-trips into a registry whose invariants hold:
// positive weights, non-negative quotas, unique resolvable tokens.
func FuzzParseTenants(f *testing.F) {
	f.Add([]byte(`{"tenants": [{"name": "a", "token": "t"}]}`))
	f.Add([]byte(`{"tenants": [{"name": "a", "token": "t", "weight": 3, "max_queued": 4, "max_cells": 100, "rate": 1.5, "burst": 2, "disabled": true}]}`))
	f.Add([]byte(`{"tenants": []}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tenants": [{"name": "a", "token": "t"}, {"name": "b", "token": "t"}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Parse(data)
		if err != nil {
			return
		}
		if r.Len() < 1 {
			t.Fatal("accepted registry with no tenants")
		}
		for _, name := range r.Names() {
			tn, ok := r.Lookup(name)
			if !ok {
				t.Fatalf("listed tenant %q not resolvable", name)
			}
			if !(tn.Weight > 0) {
				t.Fatalf("tenant %q: weight %v", name, tn.Weight)
			}
			if tn.MaxQueued < 0 || tn.MaxCells < 0 || tn.Rate < 0 || tn.Burst < 1 {
				t.Fatalf("tenant %q: bad limits %+v", name, tn)
			}
			if !tn.Disabled {
				got, err := r.Authenticate(tn.Token)
				if err != nil || got.Name != name {
					t.Fatalf("token for %q does not authenticate: %+v, %v", name, got, err)
				}
			}
		}
	})
}
