package tenant

import (
	"fmt"

	"mrclone/internal/rng"
)

// Policy selects how the service dequeues the next queued matrix.
type Policy string

const (
	// PolicyFIFO is strict arrival order — the pre-tenant behavior.
	PolicyFIFO Policy = "fifo"
	// PolicyFair is a weighted lottery across tenants with queued work
	// (FIFO within a tenant): with sustained backlogs each tenant's share
	// of dequeues converges to its weight fraction, and an idle tenant's
	// unused share redistributes to the active ones.
	PolicyFair Policy = "fair"
	// PolicySRPT dequeues the job with the smallest estimated remaining
	// work (uncached cells × workload size), arrival order breaking ties —
	// the flowtime-optimal discipline of the paper's SRPTMS scheduler.
	PolicySRPT Policy = "srpt"
)

// ParsePolicy validates a policy name; the empty string means PolicyFIFO.
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(s); p {
	case "", PolicyFIFO:
		return PolicyFIFO, nil
	case PolicyFair, PolicySRPT:
		return p, nil
	default:
		return "", fmt.Errorf("tenant: unknown queue policy %q (want fifo, fair, or srpt)", s)
	}
}

// queued is one waiting item with its scheduling attributes.
type queued[T comparable] struct {
	tenant string
	size   float64 // estimated remaining work, for PolicySRPT
	seq    uint64  // arrival order, for FIFO and tie-breaks
	v      T
}

// Queue is a multi-tenant job queue with a pluggable dequeue policy. It
// holds every waiting item in one slice — small (the service bounds it at
// QueueDepth) — so the O(n) policy scans cost nothing measurable next to a
// matrix simulation. Not safe for concurrent use.
type Queue[T comparable] struct {
	policy Policy
	weight func(tenant string) float64 // nil = all weights 1
	rng    *rng.Source                 // lottery source for PolicyFair
	seq    uint64
	items  []queued[T]
}

// NewQueue builds a queue for a policy. weight maps a tenant name to its
// fair-share weight (used only by PolicyFair; nil means equal weights) and
// seed fixes the fair lottery for reproducible tests.
func NewQueue[T comparable](policy Policy, weight func(string) float64, seed int64) *Queue[T] {
	if policy == "" {
		policy = PolicyFIFO
	}
	return &Queue[T]{policy: policy, weight: weight, rng: rng.New(seed)}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// LenTenant returns how many queued items belong to a tenant.
func (q *Queue[T]) LenTenant(tenant string) int {
	n := 0
	for i := range q.items {
		if q.items[i].tenant == tenant {
			n++
		}
	}
	return n
}

// Push appends an item for a tenant. size is the job's estimated work
// (only PolicySRPT reads it).
func (q *Queue[T]) Push(tenant string, size float64, v T) {
	q.seq++
	q.items = append(q.items, queued[T]{tenant: tenant, size: size, seq: q.seq, v: v})
}

// Pop removes and returns the next item under the queue's policy; ok is
// false when the queue is empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	var idx int
	switch q.policy {
	case PolicySRPT:
		idx = q.pickSRPT()
	case PolicyFair:
		idx = q.pickFair()
	default:
		idx = q.pickFIFO()
	}
	v = q.items[idx].v
	q.removeAt(idx)
	return v, true
}

// Remove deletes the first queued occurrence of v (any tenant), reporting
// whether it was present. Used when a queued flight is cancelled.
func (q *Queue[T]) Remove(v T) bool {
	for i := range q.items {
		if q.items[i].v == v {
			q.removeAt(i)
			return true
		}
	}
	return false
}

// Items returns the queued values in arrival order (a copy); for draining
// at shutdown.
func (q *Queue[T]) Items() []T {
	out := make([]T, 0, len(q.items))
	// items is kept in arrival order: removeAt preserves ordering and Push
	// appends, so a straight scan is already sorted by seq.
	for i := range q.items {
		out = append(out, q.items[i].v)
	}
	return out
}

func (q *Queue[T]) removeAt(i int) {
	q.items = append(q.items[:i], q.items[i+1:]...)
	// Shrink the backing array occasionally so a drained queue doesn't pin
	// a large slab.
	if len(q.items) == 0 && cap(q.items) > 64 {
		q.items = nil
	}
}

// pickFIFO returns the oldest item's index — index 0, since items stays in
// arrival order.
func (q *Queue[T]) pickFIFO() int { return 0 }

// pickSRPT returns the smallest item, arrival order breaking ties.
func (q *Queue[T]) pickSRPT() int {
	best := 0
	for i := 1; i < len(q.items); i++ {
		if q.items[i].size < q.items[best].size {
			best = i
		}
	}
	return best
}

// pickFair draws a weighted lottery over the tenants that currently have
// queued work, then takes the winner's oldest item.
func (q *Queue[T]) pickFair() int {
	// Total the weights of distinct tenants present, first-seen order.
	type share struct {
		tenant string
		w      float64
	}
	var shares []share
	total := 0.0
	for i := range q.items {
		t := q.items[i].tenant
		seen := false
		for _, s := range shares {
			if s.tenant == t {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		w := 1.0
		if q.weight != nil {
			if ww := q.weight(t); ww > 0 {
				w = ww
			}
		}
		shares = append(shares, share{tenant: t, w: w})
		total += w
	}
	winner := shares[0].tenant
	if len(shares) > 1 {
		ticket := q.rng.Float64() * total
		for _, s := range shares {
			ticket -= s.w
			if ticket < 0 {
				winner = s.tenant
				break
			}
		}
	}
	for i := range q.items {
		if q.items[i].tenant == winner {
			return i
		}
	}
	return 0 // unreachable: the winner has at least one queued item
}
