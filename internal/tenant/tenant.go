// Package tenant implements multi-tenant admission control for the
// simulation service: static API-token authentication mapping requests to
// named tenants with weights and quotas, per-tenant token-bucket submission
// rate limiting, and a pluggable multi-tenant dequeue policy (Queue) that
// replaces the service's single FIFO.
//
// The dequeue policies deliberately dogfood the scheduling ideas this
// repository simulates: PolicyFair is the weighted-fair share of
// internal/sched/fair lifted from machines-per-job to worker-slots-per-
// tenant (a weighted lottery over per-tenant FIFOs), and PolicySRPT is the
// shortest-remaining-processing-time principle behind internal/sched/srptms
// applied to whole matrices, with each job's size estimated as its uncached
// cell count × workload size. The scheduler library schedules the scheduler
// simulator.
//
// A Registry is immutable after construction apart from its rate-limiter
// state and is safe for concurrent use. A Queue is NOT safe for concurrent
// use; callers (internal/service) guard it with their own lock.
package tenant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors reported by authentication and admission.
var (
	// ErrNoToken reports a request without an API token while tenants are
	// configured (HTTP 401).
	ErrNoToken = errors.New("tenant: missing API token")
	// ErrUnknownToken reports a token that maps to no tenant (HTTP 401).
	ErrUnknownToken = errors.New("tenant: unknown API token")
	// ErrDisabled reports a valid token whose tenant is disabled (HTTP 403).
	ErrDisabled = errors.New("tenant: tenant is disabled")
	// ErrRateLimited is the errors.Is target of *RateLimitError (HTTP 429).
	ErrRateLimited = errors.New("tenant: submission rate limit exceeded")
)

// RateLimitError reports a submission rejected by a tenant's token bucket.
// It matches ErrRateLimited under errors.Is and carries the earliest time a
// retry can succeed.
type RateLimitError struct {
	// Tenant is the rate-limited tenant's name.
	Tenant string
	// RetryAfter is how long until the bucket holds a whole token again.
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("tenant %s: submission rate limit exceeded (retry in %s)",
		e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrRateLimited) match.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// Tenant is one entry of the tenants config file: a named principal with an
// API token, a fair-share weight, and admission quotas. The zero quota and
// rate fields mean "unlimited"; Weight 0 means the default weight 1.
type Tenant struct {
	// Name identifies the tenant in job records, metrics labels, and logs.
	// Required; letters, digits, '.', '_', '-' only (it becomes a Prometheus
	// label value and a job-log field).
	Name string `json:"name"`
	// Token is the static API token presented as "Authorization: Bearer
	// <token>". Required, unique across the file, no whitespace or control
	// characters.
	Token string `json:"token"`
	// Weight is the tenant's share under the fair dequeue policy (0 = 1).
	Weight float64 `json:"weight,omitempty"`
	// MaxQueued caps the tenant's jobs waiting in the queue (0 = unlimited).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxCells caps the total matrix cells across the tenant's live
	// (queued + running) jobs (0 = unlimited).
	MaxCells int64 `json:"max_cells,omitempty"`
	// Rate is the sustained submission rate in requests per second
	// (0 = unlimited).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket size: how many submissions may arrive
	// back-to-back before Rate applies (0 = max(1, ceil(Rate))).
	Burst int `json:"burst,omitempty"`
	// Disabled rejects the tenant's requests with ErrDisabled while keeping
	// its row in the file (revoke without re-keying everyone else).
	Disabled bool `json:"disabled,omitempty"`
}

// normalize fills Tenant defaults.
func (t Tenant) normalize() Tenant {
	if t.Weight == 0 {
		t.Weight = 1
	}
	if t.Burst == 0 {
		t.Burst = int(math.Ceil(t.Rate))
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	return t
}

// validName reports whether a tenant name is safe to embed in metric
// labels, job logs, and flag output.
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// validToken rejects tokens that cannot survive an Authorization header.
func validToken(token string) bool {
	if token == "" || len(token) > 256 {
		return false
	}
	for _, r := range token {
		if r <= ' ' || r == 0x7f {
			return false
		}
	}
	return true
}

// validate checks one normalized tenant row.
func (t Tenant) validate() error {
	switch {
	case !validName(t.Name):
		return fmt.Errorf("tenant: invalid name %q (need 1-64 chars of [A-Za-z0-9._-])", t.Name)
	case !validToken(t.Token):
		return fmt.Errorf("tenant %s: invalid token (need 1-256 printable non-space chars)", t.Name)
	case !(t.Weight > 0) || math.IsInf(t.Weight, 0):
		return fmt.Errorf("tenant %s: weight %v (need finite > 0)", t.Name, t.Weight)
	case t.MaxQueued < 0:
		return fmt.Errorf("tenant %s: max_queued %d", t.Name, t.MaxQueued)
	case t.MaxCells < 0:
		return fmt.Errorf("tenant %s: max_cells %d", t.Name, t.MaxCells)
	case t.Rate < 0 || math.IsInf(t.Rate, 0) || math.IsNaN(t.Rate):
		return fmt.Errorf("tenant %s: rate %v (need finite >= 0)", t.Name, t.Rate)
	case t.Burst < 0:
		return fmt.Errorf("tenant %s: burst %d", t.Name, t.Burst)
	}
	return nil
}

// fileSchema is the tenants config file: {"tenants": [...]}.
type fileSchema struct {
	Tenants []Tenant `json:"tenants"`
}

// entry couples a tenant with its mutable rate-limiter state.
type entry struct {
	t      Tenant
	bucket bucket
}

// Registry is an authenticated tenant set: token → tenant resolution plus
// per-tenant token-bucket rate limiting. Build one with Parse, Load, or
// NewRegistry; nil means anonymous single-tenant mode to the layers above.
type Registry struct {
	mu      sync.Mutex // guards bucket state only; the maps are immutable
	byToken map[string]*entry
	byName  map[string]*entry
	names   []string // sorted, for deterministic iteration
}

// NewRegistry validates and indexes a tenant list. Names and tokens must be
// unique; at least one tenant is required.
func NewRegistry(tenants []Tenant) (*Registry, error) {
	if len(tenants) == 0 {
		return nil, errors.New("tenant: need at least one tenant")
	}
	r := &Registry{
		byToken: make(map[string]*entry, len(tenants)),
		byName:  make(map[string]*entry, len(tenants)),
	}
	for i, t := range tenants {
		t = t.normalize()
		if err := t.validate(); err != nil {
			return nil, fmt.Errorf("tenant: entry %d: %w", i, err)
		}
		if _, dup := r.byName[t.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate name %q", t.Name)
		}
		if _, dup := r.byToken[t.Token]; dup {
			return nil, fmt.Errorf("tenant %s: token already used by another tenant", t.Name)
		}
		e := &entry{t: t, bucket: newBucket(t.Rate, t.Burst)}
		r.byName[t.Name] = e
		r.byToken[t.Token] = e
		r.names = append(r.names, t.Name)
	}
	sort.Strings(r.names)
	return r, nil
}

// Parse decodes a tenants config file strictly: unknown fields and trailing
// data are rejected, then the tenant list is validated and indexed.
func Parse(data []byte) (*Registry, error) {
	var f fileSchema
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenant: decode config: %w", err)
	}
	if err := dec.Decode(&json.RawMessage{}); !errors.Is(err, io.EOF) {
		return nil, errors.New("tenant: trailing data after config object")
	}
	return NewRegistry(f.Tenants)
}

// Load reads and parses a tenants config file from disk.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	return Parse(data)
}

// Len returns the number of configured tenants.
func (r *Registry) Len() int { return len(r.names) }

// Names returns the tenant names in sorted order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// Lookup returns a tenant by name.
func (r *Registry) Lookup(name string) (Tenant, bool) {
	e, ok := r.byName[name]
	if !ok {
		return Tenant{}, false
	}
	return e.t, true
}

// Weight returns the fair-share weight of a tenant, or 1 for names the
// registry does not know (including the anonymous tenant "").
func (r *Registry) Weight(name string) float64 {
	if e, ok := r.byName[name]; ok {
		return e.t.Weight
	}
	return 1
}

// Authenticate resolves a token to its tenant without consuming rate-limit
// budget: use it for read routes. Errors: ErrNoToken for an empty token,
// ErrUnknownToken for an unrecognized one, ErrDisabled for a disabled
// tenant.
func (r *Registry) Authenticate(token string) (Tenant, error) {
	if token == "" {
		return Tenant{}, ErrNoToken
	}
	e, ok := r.byToken[token]
	if !ok {
		return Tenant{}, ErrUnknownToken
	}
	if e.t.Disabled {
		return Tenant{}, fmt.Errorf("%w: %s", ErrDisabled, e.t.Name)
	}
	return e.t, nil
}

// Admit authenticates a token and consumes one submission from the tenant's
// token bucket, returning *RateLimitError (errors.Is ErrRateLimited) when
// the bucket is empty. Use it exactly once per submission attempt.
func (r *Registry) Admit(token string, now time.Time) (Tenant, error) {
	t, err := r.Authenticate(token)
	if err != nil {
		return Tenant{}, err
	}
	e := r.byToken[token]
	r.mu.Lock()
	ok, retry := e.bucket.take(now)
	r.mu.Unlock()
	if !ok {
		return Tenant{}, &RateLimitError{Tenant: t.Name, RetryAfter: retry}
	}
	return t, nil
}

// BearerToken extracts the API token from a request's Authorization header
// ("Bearer <token>", scheme case-insensitive); empty when absent or not a
// bearer credential.
func BearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if auth == "" {
		return ""
	}
	const scheme = "bearer "
	if len(auth) <= len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
		return ""
	}
	return strings.TrimSpace(auth[len(scheme):])
}
