package tenant

import (
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func mustRegistry(t *testing.T, tenants ...Tenant) *Registry {
	t.Helper()
	r, err := NewRegistry(tenants)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	return r
}

func TestParseValidConfig(t *testing.T) {
	r, err := Parse([]byte(`{
		"tenants": [
			{"name": "alpha", "token": "tok-a", "weight": 3, "max_queued": 4, "max_cells": 100, "rate": 10, "burst": 20},
			{"name": "beta", "token": "tok-b"},
			{"name": "gamma", "token": "tok-c", "disabled": true}
		]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got, want := r.Len(), 3; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := strings.Join(r.Names(), ","), "alpha,beta,gamma"; got != want {
		t.Fatalf("Names = %q, want %q", got, want)
	}
	a, ok := r.Lookup("alpha")
	if !ok || a.Weight != 3 || a.MaxQueued != 4 || a.MaxCells != 100 || a.Rate != 10 || a.Burst != 20 {
		t.Fatalf("alpha = %+v, ok=%v", a, ok)
	}
	b, _ := r.Lookup("beta")
	if b.Weight != 1 || b.Burst != 1 || b.Rate != 0 {
		t.Fatalf("beta defaults = %+v (want weight 1, burst 1, rate 0)", b)
	}
	if w := r.Weight("alpha"); w != 3 {
		t.Fatalf("Weight(alpha) = %v", w)
	}
	if w := r.Weight("nobody"); w != 1 {
		t.Fatalf("Weight(nobody) = %v, want default 1", w)
	}
}

func TestParseRejectsBadConfigs(t *testing.T) {
	cases := map[string]string{
		"empty object":    `{}`,
		"no tenants":      `{"tenants": []}`,
		"unknown field":   `{"tenants": [{"name": "a", "token": "t", "color": "red"}]}`,
		"trailing data":   `{"tenants": [{"name": "a", "token": "t"}]} {}`,
		"missing name":    `{"tenants": [{"token": "t"}]}`,
		"missing token":   `{"tenants": [{"name": "a"}]}`,
		"bad name chars":  `{"tenants": [{"name": "a b", "token": "t"}]}`,
		"space in token":  `{"tenants": [{"name": "a", "token": "t t"}]}`,
		"dup name":        `{"tenants": [{"name": "a", "token": "t1"}, {"name": "a", "token": "t2"}]}`,
		"dup token":       `{"tenants": [{"name": "a", "token": "t"}, {"name": "b", "token": "t"}]}`,
		"negative weight": `{"tenants": [{"name": "a", "token": "t", "weight": -1}]}`,
		"negative quota":  `{"tenants": [{"name": "a", "token": "t", "max_queued": -1}]}`,
		"negative cells":  `{"tenants": [{"name": "a", "token": "t", "max_cells": -1}]}`,
		"negative rate":   `{"tenants": [{"name": "a", "token": "t", "rate": -1}]}`,
		"negative burst":  `{"tenants": [{"name": "a", "token": "t", "burst": -1}]}`,
		"not json":        `tenants:`,
	}
	for label, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: Parse accepted %s", label, in)
		}
	}
}

func TestAuthenticate(t *testing.T) {
	r := mustRegistry(t,
		Tenant{Name: "a", Token: "tok-a"},
		Tenant{Name: "off", Token: "tok-off", Disabled: true},
	)
	if _, err := r.Authenticate(""); !errors.Is(err, ErrNoToken) {
		t.Fatalf("empty token: %v, want ErrNoToken", err)
	}
	if _, err := r.Authenticate("nope"); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("unknown token: %v, want ErrUnknownToken", err)
	}
	if _, err := r.Authenticate("tok-off"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("disabled tenant: %v, want ErrDisabled", err)
	}
	tn, err := r.Authenticate("tok-a")
	if err != nil || tn.Name != "a" {
		t.Fatalf("Authenticate(tok-a) = %+v, %v", tn, err)
	}
}

func TestAdmitRateLimit(t *testing.T) {
	r := mustRegistry(t, Tenant{Name: "a", Token: "tok", Rate: 1, Burst: 2})
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if _, err := r.Admit("tok", now); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	_, err := r.Admit("tok", now)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over burst: %v, want ErrRateLimited", err)
	}
	var rl *RateLimitError
	if !errors.As(err, &rl) || rl.Tenant != "a" {
		t.Fatalf("error = %#v, want *RateLimitError for tenant a", err)
	}
	if rl.RetryAfter <= 0 || rl.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %s, want (0, 1s]", rl.RetryAfter)
	}
	// After the advertised wait, one token has accrued.
	if _, err := r.Admit("tok", now.Add(rl.RetryAfter)); err != nil {
		t.Fatalf("admit after RetryAfter: %v", err)
	}
	// Idle time never accumulates beyond burst.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if _, err := r.Admit("tok", later); err != nil {
			t.Fatalf("post-idle admit %d: %v", i, err)
		}
	}
	if _, err := r.Admit("tok", later); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-idle over burst: %v, want ErrRateLimited", err)
	}
}

func TestAdmitUnlimitedWhenRateZero(t *testing.T) {
	r := mustRegistry(t, Tenant{Name: "a", Token: "tok"})
	now := time.Unix(1000, 0)
	for i := 0; i < 1000; i++ {
		if _, err := r.Admit("tok", now); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
}

func TestBearerToken(t *testing.T) {
	cases := []struct {
		header, want string
	}{
		{"", ""},
		{"Bearer abc", "abc"},
		{"bearer abc", "abc"},
		{"BEARER abc", "abc"},
		{"Bearer   abc  ", "abc"},
		{"Basic abc", ""},
		{"Bearer", ""},
		{"Bearer ", ""},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", "/", nil)
		if c.header != "" {
			req.Header.Set("Authorization", c.header)
		}
		if got := BearerToken(req); got != c.want {
			t.Errorf("BearerToken(%q) = %q, want %q", c.header, got, c.want)
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](PolicyFIFO, nil, 1)
	q.Push("a", 9, 1)
	q.Push("b", 1, 2)
	q.Push("a", 5, 3)
	for want := 1; want <= 3; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestQueueSRPT(t *testing.T) {
	q := NewQueue[int](PolicySRPT, nil, 1)
	q.Push("a", 30, 1)
	q.Push("b", 10, 2)
	q.Push("a", 10, 3) // ties with 2; 2 arrived first
	q.Push("b", 20, 4)
	var order []int
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, v)
	}
	want := []int{2, 3, 4, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("srpt order = %v, want %v", order, want)
		}
	}
}

func TestQueueFairConvergesToWeights(t *testing.T) {
	weights := map[string]float64{"a": 3, "b": 1}
	q := NewQueue[int](PolicyFair, func(n string) float64 { return weights[n] }, 42)
	// Sustained backlog: after each pop, refill the popped tenant so both
	// always have queued work.
	counts := map[string]int{}
	q.Push("a", 1, 1)
	q.Push("b", 1, 2)
	const draws = 4000
	for i := 0; i < draws; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue unexpectedly empty")
		}
		tn := "a"
		if v%2 == 0 {
			tn = "b"
		}
		counts[tn]++
		q.Push(tn, 1, v) // refill same parity → same tenant
	}
	share := float64(counts["a"]) / draws
	if math.Abs(share-0.75) > 0.03 {
		t.Fatalf("tenant a share = %.3f over %d draws, want ~0.75", share, draws)
	}
}

func TestQueueFairIdleTenantRedistributes(t *testing.T) {
	weights := map[string]float64{"a": 3, "b": 1}
	q := NewQueue[int](PolicyFair, func(n string) float64 { return weights[n] }, 7)
	// Only b has work: every draw must pick b even at weight 1.
	for i := 0; i < 50; i++ {
		q.Push("b", 1, i)
	}
	for i := 0; i < 50; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d (FIFO within tenant)", v, ok, i)
		}
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue[int](PolicyFIFO, nil, 1)
	q.Push("a", 1, 1)
	q.Push("a", 1, 2)
	q.Push("b", 1, 3)
	if !q.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if q.Remove(2) {
		t.Fatal("second Remove(2) = true")
	}
	if got := q.LenTenant("a"); got != 1 {
		t.Fatalf("LenTenant(a) = %d, want 1", got)
	}
	items := q.Items()
	if len(items) != 2 || items[0] != 1 || items[1] != 3 {
		t.Fatalf("Items = %v, want [1 3]", items)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": PolicyFIFO, "fifo": PolicyFIFO, "fair": PolicyFair, "srpt": PolicySRPT,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatal("ParsePolicy(lifo) accepted")
	}
}
