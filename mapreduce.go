package mrclone

import (
	"mrclone/internal/mrengine"
)

// Re-exported MapReduce-engine types: a small real in-process MapReduce
// engine whose speculative-execution policy is pluggable with the paper's
// strategies (see internal/mrengine).
type (
	// KV is one key-value pair.
	KV = mrengine.KV
	// MapFunc transforms one input pair into intermediate pairs.
	MapFunc = mrengine.MapFunc
	// ReduceFunc folds the values of one key into output pairs.
	ReduceFunc = mrengine.ReduceFunc
	// MapReduceJob describes an in-process MapReduce computation.
	MapReduceJob = mrengine.Job
	// MapReduceConfig parameterizes the engine (workers, stragglers, policy).
	MapReduceConfig = mrengine.Config
	// MapReduceEngine executes MapReduce jobs on a bounded worker pool.
	MapReduceEngine = mrengine.Engine
	// MapReduceResult is the output of a completed MapReduce job.
	MapReduceResult = mrengine.Result
	// StragglerModel injects execution-time skew into task attempts.
	StragglerModel = mrengine.StragglerModel
	// SpeculationPolicy decides cloning/backup behaviour per task.
	SpeculationPolicy = mrengine.SpeculationPolicy
	// NoSpeculation runs one attempt per task.
	NoSpeculation = mrengine.NoSpeculation
	// CloningPolicy launches parallel attempts up-front (the paper's way).
	CloningPolicy = mrengine.CloningPolicy
	// DetectionPolicy launches backups for observed stragglers
	// (Mantri/LATE's way).
	DetectionPolicy = mrengine.DetectionPolicy
)

// NewMapReduceEngine returns an in-process MapReduce engine.
func NewMapReduceEngine(cfg MapReduceConfig) (*MapReduceEngine, error) {
	return mrengine.New(cfg)
}
