package mrclone

import (
	"context"
	"errors"
	"fmt"
	"io"

	"mrclone/internal/cluster"
	"mrclone/internal/experiments"
	"mrclone/internal/job"
	"mrclone/internal/metrics"
	"mrclone/internal/runner"
	"mrclone/internal/sched"
	"mrclone/internal/service"
	svcspec "mrclone/internal/service/spec"
	"mrclone/internal/store"
	"mrclone/internal/tenant"
	"mrclone/internal/trace"
)

// Re-exported core types. The internal packages hold the implementations;
// these aliases form the stable public surface.
type (
	// JobSpec describes one two-phase job (tasks, arrival, weight, duration
	// distributions).
	JobSpec = job.Spec
	// Phase identifies the Map or Reduce phase.
	Phase = job.Phase
	// Result is the outcome of a simulation run.
	Result = cluster.Result
	// JobRecord is one job's outcome within a Result.
	JobRecord = cluster.JobRecord
	// Scheduler is the per-slot scheduling interface.
	Scheduler = cluster.Scheduler
	// SchedulerContext is the per-slot view handed to a Scheduler; custom
	// schedulers implement Schedule(*SchedulerContext).
	SchedulerContext = cluster.Context
	// Job is the runtime job state visible to schedulers.
	Job = job.Job
	// Task is the runtime task state visible to schedulers.
	Task = job.Task
	// SchedulerParams carries scheduler tunables (epsilon, r, clone caps).
	SchedulerParams = sched.Params
	// Trace is a workload trace (generated or loaded).
	Trace = trace.Trace
	// TraceParams configures the synthetic trace generator.
	TraceParams = trace.Params
	// FlowtimeSummary aggregates flowtime statistics.
	FlowtimeSummary = metrics.FlowtimeSummary
	// CDFPoint is one point of an empirical flowtime CDF.
	CDFPoint = metrics.CDFPoint
	// ExperimentOptions configures the paper-reproduction experiments.
	ExperimentOptions = experiments.Options
	// MatrixSpec describes a run matrix: schedulers × sweep points × seed
	// replicates over one workload (see internal/runner).
	MatrixSpec = runner.Spec
	// MatrixSchedulerSpec is one scheduler row of a run matrix.
	MatrixSchedulerSpec = runner.SchedulerSpec
	// MatrixPoint is one sweep-point column of a run matrix.
	MatrixPoint = runner.Point
	// MatrixResult is a completed run matrix with per-cell results.
	MatrixResult = runner.Result
	// MatrixCellResult is the outcome of one (scheduler, point, run) cell.
	MatrixCellResult = runner.CellResult
	// MatrixAggregate is the replicate-averaged outcome of one
	// (scheduler, point) pair.
	MatrixAggregate = runner.Aggregate
	// Service is the in-process simulation service: a bounded job queue
	// over RunMatrix with single-flight deduplication and a
	// content-addressed result cache (see internal/service).
	Service = service.Service
	// ServiceConfig sizes a Service (workers, queue depth, cache byte
	// budget and TTL, per-matrix cell parallelism, job retention, GC
	// cadence, and optionally a persistent store, a structured Logger,
	// and a ShardName stamped on every log line).
	ServiceConfig = service.Config
	// ServiceJobStatus is the client-visible snapshot of one service job.
	ServiceJobStatus = service.JobStatus
	// ServiceMetrics is a snapshot of service counters and gauges.
	ServiceMetrics = service.Metrics
	// ServiceSpec is the canonical, versioned wire form of a run matrix:
	// workload (trace params or rows), schedulers, sweep points, seeding.
	// Its Canonical and Hash methods give the content address the service
	// caches under.
	ServiceSpec = svcspec.Spec
	// ServiceWorkload is the workload clause of a ServiceSpec.
	ServiceWorkload = svcspec.Workload
	// ServiceSchedulerSpec is one scheduler row of a ServiceSpec.
	ServiceSchedulerSpec = svcspec.Scheduler
	// ServicePoint is one sweep-point column of a ServiceSpec.
	ServicePoint = svcspec.Point
	// TraceRow is the serializable description of one trace job.
	TraceRow = trace.JobRow
	// Tenant is one row of a multi-tenant registry: a named principal with
	// an API token, a fair-share weight, and admission quotas.
	Tenant = tenant.Tenant
	// TenantRegistry authenticates API tokens and enforces per-tenant
	// submission rates; set it as ServiceConfig.Tenants and submit with
	// Service.SubmitToken.
	TenantRegistry = tenant.Registry
	// QueuePolicy selects how a Service dequeues queued matrices
	// (ServiceConfig.QueuePolicy).
	QueuePolicy = tenant.Policy
	// ServiceTenantMetrics is one tenant's slice of ServiceMetrics.
	ServiceTenantMetrics = service.TenantMetrics
)

// Phases of a MapReduce job.
const (
	PhaseMap    = job.PhaseMap
	PhaseReduce = job.PhaseReduce
)

// Queue policies for ServiceConfig.QueuePolicy: arrival order, a
// weighted-fair lottery across tenant backlogs, or
// shortest-remaining-work-first sized by uncached cells — the paper's
// scheduling disciplines applied to the service's own job queue.
const (
	QueuePolicyFIFO = tenant.PolicyFIFO
	QueuePolicyFair = tenant.PolicyFair
	QueuePolicySRPT = tenant.PolicySRPT
)

// ParseTenants decodes and validates a multi-tenant registry from its JSON
// config-file form (strict: unknown fields and duplicate names or tokens
// are rejected). See docs/OPERATIONS.md, "Multi-tenant deployment", for
// the format.
func ParseTenants(data []byte) (*TenantRegistry, error) { return tenant.Parse(data) }

// LoadTenants reads and parses a tenants config file from disk.
func LoadTenants(path string) (*TenantRegistry, error) { return tenant.Load(path) }

// ParseQueuePolicy validates a queue-policy name ("fifo", "fair", "srpt");
// the empty string means QueuePolicyFIFO.
func ParseQueuePolicy(s string) (QueuePolicy, error) { return tenant.ParsePolicy(s) }

// GoogleTraceParams returns generator parameters calibrated to the Google
// cluster trace statistics of the paper's Table II.
func GoogleTraceParams() TraceParams { return trace.GoogleParams() }

// GenerateTrace produces a synthetic workload trace.
func GenerateTrace(p TraceParams) (*Trace, error) { return trace.Generate(p) }

// ReadTraceCSV loads a trace written by Trace.WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// SchedulerNames lists the available scheduler implementations.
func SchedulerNames() []string { return sched.Names() }

// NewScheduler builds a named scheduler ("srptms+c", "sca", "mantri",
// "fair", "srpt", "offline") with the given parameters.
func NewScheduler(name string, p SchedulerParams) (Scheduler, error) {
	return sched.Build(name, p)
}

// Summarize computes flowtime statistics over a finished run.
func Summarize(res *Result) (FlowtimeSummary, error) { return metrics.Summarize(res) }

// FlowtimeCDF evaluates the empirical flowtime CDF of a run on [lo, hi].
func FlowtimeCDF(res *Result, lo, hi float64, points int) ([]CDFPoint, error) {
	return metrics.FlowtimeCDF(res, lo, hi, points)
}

// Simulation is a configured cluster simulation, built with NewSimulation
// and executed with Run.
type Simulation struct {
	specs     []JobSpec
	machines  int
	speed     float64
	seed      int64
	schedName string
	params    SchedulerParams
	scheduler Scheduler // overrides schedName when non-nil
}

// Option configures a Simulation.
type Option func(*Simulation) error

// WithMachines sets the cluster size M (required, > 0).
func WithMachines(m int) Option {
	return func(s *Simulation) error {
		if m <= 0 {
			return fmt.Errorf("mrclone: machines %d", m)
		}
		s.machines = m
		return nil
	}
}

// WithScheduler selects a registered scheduler by name. The default is
// "srptms+c" with the tuned parameters.
func WithScheduler(name string) Option {
	return func(s *Simulation) error {
		s.schedName = name
		return nil
	}
}

// WithCustomScheduler installs a caller-provided Scheduler implementation.
func WithCustomScheduler(sc Scheduler) Option {
	return func(s *Simulation) error {
		if sc == nil {
			return errors.New("mrclone: nil scheduler")
		}
		s.scheduler = sc
		return nil
	}
}

// WithSchedulerParams overrides the scheduler tunables.
func WithSchedulerParams(p SchedulerParams) Option {
	return func(s *Simulation) error {
		s.params = p
		return nil
	}
}

// WithSeed fixes the random seed; equal seeds give identical runs.
func WithSeed(seed int64) Option {
	return func(s *Simulation) error {
		s.seed = seed
		return nil
	}
}

// WithSpeed sets the machine speed for resource-augmentation experiments
// (Definition 1 of the paper); 0 means unit speed.
func WithSpeed(speed float64) Option {
	return func(s *Simulation) error {
		if speed < 0 {
			return fmt.Errorf("mrclone: speed %v", speed)
		}
		s.speed = speed
		return nil
	}
}

// NewSimulation prepares a simulation of the trace under the configured
// scheduler and cluster.
func NewSimulation(tr *Trace, opts ...Option) (*Simulation, error) {
	if tr == nil || len(tr.Rows) == 0 {
		return nil, errors.New("mrclone: empty trace")
	}
	specs, err := tr.Specs()
	if err != nil {
		return nil, err
	}
	return NewSimulationFromSpecs(specs, opts...)
}

// NewSimulationFromSpecs prepares a simulation over explicit job specs.
func NewSimulationFromSpecs(specs []JobSpec, opts ...Option) (*Simulation, error) {
	if len(specs) == 0 {
		return nil, errors.New("mrclone: no jobs")
	}
	s := &Simulation{
		specs:     specs,
		machines:  12000,
		schedName: "srptms+c",
		params: SchedulerParams{
			Epsilon:         experiments.TunedEpsilon,
			DeviationFactor: experiments.TunedDeviationFactor,
		},
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Run executes the simulation to completion.
func (s *Simulation) Run() (*Result, error) {
	scheduler := s.scheduler
	if scheduler == nil {
		var err error
		scheduler, err = sched.Build(s.schedName, s.params)
		if err != nil {
			return nil, err
		}
	}
	eng, err := cluster.New(cluster.Config{
		Machines: s.machines,
		Speed:    s.speed,
		Seed:     s.seed,
	}, scheduler, s.specs)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// MatrixOption configures RunMatrix execution (not matrix content).
type MatrixOption func(*runner.Options) error

// WithParallelism bounds the number of concurrently simulated matrix cells.
// 0 means one worker per CPU core. Results are byte-identical at any
// parallelism level.
func WithParallelism(n int) MatrixOption {
	return func(o *runner.Options) error {
		if n < 0 {
			return fmt.Errorf("mrclone: parallelism %d", n)
		}
		o.Parallelism = n
		return nil
	}
}

// WithProgress installs a progress callback invoked after each cell
// completes with (done, total). Calls are serialized and monotone.
func WithProgress(fn func(done, total int)) MatrixOption {
	return func(o *runner.Options) error {
		o.Progress = fn
		return nil
	}
}

// WithRawResults retains every cell's full *Result (per-job records),
// enabling CDF reductions via MatrixResult.CDF at the cost of memory
// proportional to jobs × cells.
func WithRawResults() MatrixOption {
	return func(o *runner.Options) error {
		o.KeepRaw = true
		return nil
	}
}

// RunMatrix executes a run matrix — every (scheduler, sweep point, seed
// replicate) cell — on a bounded worker pool with context cancellation.
// Each cell's RNG seed is derived deterministically from the base seed and
// the cell's replicate coordinate, and all reductions fold cells in matrix
// order, so results (including WriteJSON/WriteCSV artifact bytes) are
// identical at any parallelism level.
//
//	specs, _ := tr.Specs()
//	res, err := mrclone.RunMatrix(ctx, mrclone.MatrixSpec{
//		Specs:      specs,
//		Schedulers: []mrclone.MatrixSchedulerSpec{{Name: "srptms+c"}, {Name: "mantri"}},
//		Points:     []mrclone.MatrixPoint{{X: 1000, Machines: 1000}},
//		Runs:       10,
//		BaseSeed:   1,
//	}, mrclone.WithParallelism(0))
func RunMatrix(ctx context.Context, spec MatrixSpec, opts ...MatrixOption) (*MatrixResult, error) {
	var o runner.Options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	return runner.Run(ctx, spec, o)
}

// NewService starts an in-process simulation service: submissions are
// validated and content-hashed (ParseServiceSpec / ServiceSpec.Hash),
// identical in-flight specs share one computation, and completed matrices
// are served from a byte-budgeted LRU cache — soundly, because RunMatrix
// artifacts are byte-identical for equal specs. Serve it over HTTP with
// Service.Handler (or run the bundled cmd/mrserved daemon), and stop it
// with Service.Close.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewPersistentService starts a simulation service whose result cache and
// job table are backed by a disk store rooted at dataDir (created if
// needed): completed artifacts survive restarts and are served back as disk
// cache hits, terminal-job history is recovered on startup, and every
// simulated matrix cell persists under its own content address, so
// overlapping matrices reuse shared cells and jobs that were in flight when
// the previous process died are requeued and refill from their persisted
// cells (set ServiceConfig.DisableCellCache to fail them instead). The
// service owns the store; Service.Close closes it. See cmd/mrserved and
// docs/OPERATIONS.md for the operational details.
func NewPersistentService(dataDir string, cfg ServiceConfig) (*Service, error) {
	st, err := store.Open(dataDir)
	if err != nil {
		return nil, err
	}
	cfg.Store = st
	return service.New(cfg), nil
}

// ParseServiceSpec decodes and validates a canonical matrix spec. Parsing
// is strict: unknown fields, trailing data, unregistered scheduler names,
// and malformed workloads are rejected.
func ParseServiceSpec(data []byte) (ServiceSpec, error) { return svcspec.Parse(data) }

// ServiceSpecVersion is the current spec schema version.
const ServiceSpecVersion = svcspec.Version

// Experiment presets mirroring the paper's evaluation scale.
var (
	// FullExperimentOptions is the paper's setup (6064 jobs, 12K machines).
	FullExperimentOptions = experiments.FullOptions
	// QuickExperimentOptions is a laptop-scale preset with the same load.
	QuickExperimentOptions = experiments.QuickOptions
)
